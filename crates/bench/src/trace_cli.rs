//! The `abe-experiments trace` subcommand: re-run one grid cell of an
//! experiment with telemetry recording on.
//!
//! An experiment's sweep measures *aggregates*; this module answers the
//! follow-up question "what actually happened in that cell?" It
//! re-expands the experiment's own [`SweepSpec`], selects a single cell
//! by `axis=value` coordinates plus a repetition index, and re-runs just
//! that cell through the same configuration function the sweep used —
//! with a [`Recording`] installed. The captured trace renders as
//! `trace-v1` JSONL (see `docs/TRACE_JSON.md`) and feeds the
//! [`TraceAnalysis`] report: per-node timelines, message causal chains,
//! and the empirical Definition-1 audit, cross-checked against the
//! `BudgetAuditor`'s own `max_edge_mean` when the cell ran under an
//! adversary plan.
//!
//! Recording is an observer (see `abe_telemetry`): the traced re-run
//! produces the byte-identical [`NetworkReport`] the sweep's untraced
//! run produced, and the trace bytes are identical at any
//! `--threads`/`--shards` setting. [`check_cell`] turns those contracts
//! into a CI-runnable differential check.

use std::fmt::Write as _;

use abe_core::{NetworkReport, Recording, RunRecorder};
use abe_telemetry::{json_str, render_header, validate_trace, JsonlSink, TraceAnalysis};

use crate::experiments::{e17_adversary, e1_messages};
use crate::sweep::{Cell, SweepSpec};
use crate::RunCtx;

use abe_election::run_abe_calibrated;

/// One re-run of a single grid cell, with optional telemetry capture.
#[derive(Debug)]
pub struct TracedRun {
    /// The run's network report (identical with recording on or off).
    pub report: NetworkReport,
    /// The captured recorder (`None` when recording was off).
    pub telemetry: Option<Box<RunRecorder>>,
    /// The cell's declared Definition-1 per-edge expected-delay bound.
    pub bound: f64,
    /// The `BudgetAuditor`'s observed max per-edge empirical mean, when
    /// the cell ran under an adversary plan (the trace's own audit must
    /// agree with it; see [`analysis_report`]).
    pub audited_max_edge_mean: Option<f64>,
}

impl TracedRun {
    /// The captured recorder.
    ///
    /// # Panics
    ///
    /// Panics if the run was executed without recording.
    pub fn recorder(&self) -> &RunRecorder {
        self.telemetry
            .as_deref()
            .expect("run was executed without recording")
    }
}

/// An experiment the `trace` subcommand can re-run cell-by-cell.
#[derive(Clone, Copy)]
pub struct TraceableExperiment {
    /// Experiment id, e.g. `"e1"`.
    pub id: &'static str,
    /// One-line description for `trace --list`.
    pub about: &'static str,
    /// The experiment's own sweep grid at a given scale.
    pub spec: fn(&RunCtx) -> SweepSpec,
    /// Re-runs one cell of that grid, optionally recording.
    pub run_cell: fn(&RunCtx, &Cell, Option<Recording>) -> TracedRun,
}

fn e1_cell(ctx: &RunCtx, cell: &Cell, record: Option<Recording>) -> TracedRun {
    let mut cfg = e1_messages::cell_config(ctx, cell);
    if let Some(r) = record {
        cfg = cfg.record(r);
    }
    let o = run_abe_calibrated(&cfg, e1_messages::A);
    TracedRun {
        report: o.report,
        telemetry: o.telemetry,
        bound: e1_messages::DELTA,
        audited_max_edge_mean: None,
    }
}

fn e17_cell(ctx: &RunCtx, cell: &Cell, record: Option<Recording>) -> TracedRun {
    let (mut cfg, bound) = e17_adversary::cell_config(ctx, cell);
    if let Some(r) = record {
        cfg = cfg.record(r);
    }
    let o = run_abe_calibrated(&cfg, e17_adversary::A);
    let audited = (cell.idx("strategy") != 0).then_some(o.report.adversary.max_edge_mean);
    TracedRun {
        report: o.report,
        telemetry: o.telemetry,
        bound,
        audited_max_edge_mean: audited,
    }
}

/// The traceable-experiment registry. A subset of the main registry:
/// tracing needs a per-cell configuration function, which experiments
/// export individually (`spec` + `cell_config`).
pub fn trace_registry() -> Vec<TraceableExperiment> {
    vec![
        TraceableExperiment {
            id: "e1",
            about: "election message complexity — oblivious exponential delays",
            spec: e1_messages::spec,
            run_cell: e1_cell,
        },
        TraceableExperiment {
            id: "e17",
            about: "election under budgeted adversaries — auditor cross-check",
            spec: e17_adversary::spec,
            run_cell: e17_cell,
        },
    ]
}

/// Selects exactly one cell of `spec` by `axis=value` selectors plus a
/// repetition index.
///
/// # Errors
///
/// Returns a human-readable message when a selector names an unknown
/// axis, no cell matches, or the selectors leave more than one grid
/// combination in play.
pub fn select_cell(
    spec: &SweepSpec,
    selectors: &[(String, String)],
    rep: u64,
) -> Result<Cell, String> {
    for (name, _) in selectors {
        if !spec.axes().iter().any(|a| a.name == name) {
            let known: Vec<&str> = spec.axes().iter().map(|a| a.name).collect();
            return Err(format!(
                "unknown axis {name:?}; this experiment's axes: {}",
                known.join(", ")
            ));
        }
    }
    let matches: Vec<Cell> = spec
        .expand()
        .into_iter()
        .filter(|c| selectors.iter().all(|(k, v)| c.value(k).to_string() == *v))
        .collect();
    if matches.is_empty() {
        let mut axes = String::new();
        for a in spec.axes() {
            let values: Vec<String> = a.values.iter().map(ToString::to_string).collect();
            let _ = write!(axes, "\n  {}: {}", a.name, values.join(", "));
        }
        return Err(format!(
            "no grid cell matches the given coordinates; axis values:{axes}"
        ));
    }
    let mut selected: Vec<Cell> = matches.into_iter().filter(|c| c.rep() == rep).collect();
    match selected.len() {
        0 => Err(format!("no matching cell has rep {rep}")),
        1 => Ok(selected.pop().expect("one cell")),
        n => {
            let examples: Vec<String> = selected.iter().take(4).map(Cell::label).collect();
            Err(format!(
                "{n} cells match — add axis selectors to pin one:\n  {}",
                examples.join("\n  ")
            ))
        }
    }
}

/// Renders the complete `trace-v1` file (header + record lines, each
/// `\n`-terminated) for a traced run. `meta` adds caller header fields
/// as `(name, raw JSON value)` pairs.
pub fn render_trace_file(run: &TracedRun, meta: &[(&str, String)]) -> String {
    let rec = run.recorder();
    let mut sink = JsonlSink::new();
    rec.replay(&mut sink);
    format!(
        "{}\n{}",
        render_header(sink.records(), rec.dropped(), meta),
        sink.body()
    )
}

/// Builds the standard header metadata for a traced cell. Only run
/// *identity* goes in the header — never execution parameters like the
/// shard or thread count — so the whole file stays byte-identical at
/// any `--threads`/`--shards` setting.
pub fn trace_meta(id: &str, ctx: &RunCtx, cell: &Cell) -> Vec<(&'static str, String)> {
    vec![
        ("experiment", json_str(id)),
        ("scale", json_str(ctx.scale.name())),
        ("cell", json_str(&cell.label())),
        ("seed", format!("\"{}\"", cell.seed())),
    ]
}

/// Renders the analysis report for a traced run: per-node timelines,
/// the Definition-1 delay audit against the cell's declared bound, and
/// — for audited (adversarial) cells — the cross-check of the trace's
/// empirical per-edge means against the `BudgetAuditor`'s observed
/// `max_edge_mean`.
pub fn analysis_report(run: &TracedRun) -> String {
    let rec = run.recorder();
    let a = TraceAnalysis::from_records(rec.records().cloned());
    let mut out = a.report(Some(run.bound));
    if rec.dropped() > 0 {
        let _ = writeln!(
            out,
            "note: {} records evicted by the retention cap — means below cover the \
             retained window only",
            rec.dropped()
        );
    }
    if let Some(audited) = run.audited_max_edge_mean {
        let traced = a.max_edge_mean().map_or(0.0, |(_, m)| m);
        let agrees = (traced - audited).abs() <= 1e-9 * audited.abs().max(1.0);
        let _ = writeln!(
            out,
            "auditor cross-check: trace max edge mean {traced:.9} vs BudgetAuditor \
             {audited:.9} — {}",
            if agrees { "agree" } else { "DISAGREE" }
        );
    }
    out
}

/// Renders the causal chain starting from message `(edge, seq)` as one
/// line per hop.
pub fn render_chain(run: &TracedRun, edge: u32, seq: u64, limit: usize) -> String {
    let a = TraceAnalysis::from_records(run.recorder().records().cloned());
    let hops = a.chain_from(edge, seq, limit);
    if hops.is_empty() {
        return format!("no trace record for message (edge {edge}, seq {seq})\n");
    }
    let mut out = format!("causal chain from (edge {edge}, seq {seq}):\n");
    for (i, hop) in hops.iter().enumerate() {
        let sent = hop
            .sent_at
            .map_or("?".to_string(), |t| format!("{:.6}", t.as_secs()));
        let delivered = hop
            .delivered_at
            .map_or("in flight / dropped".to_string(), |t| {
                format!("{:.6}", t.as_secs())
            });
        let _ = writeln!(
            out,
            "  #{i} e{} seq {}: n{} -> n{}  sent {sent}  delivered {delivered}",
            hop.edge, hop.seq, hop.src, hop.dst
        );
    }
    out
}

/// The differential check behind `trace --check`: proves, for one cell,
/// every observability contract CI relies on.
///
/// 1. recording off vs on produce equal [`NetworkReport`]s (the
///    recorder never perturbs the run), and the untraced run captures
///    nothing;
/// 2. full recording evicts zero records;
/// 3. the rendered `trace-v1` file is schema-valid;
/// 4. re-running at a different `--shards` count yields byte-identical
///    trace and histogram JSON (and the same report);
/// 5. for audited cells, the trace's empirical max per-edge mean agrees
///    with the `BudgetAuditor`'s to 1e-9.
///
/// # Errors
///
/// Returns the first violated contract as a human-readable message.
pub fn check_cell(exp: &TraceableExperiment, ctx: &RunCtx, cell: &Cell) -> Result<String, String> {
    let full = Recording::full().payloads(true).histograms(true);
    let untraced = (exp.run_cell)(ctx, cell, None);
    if untraced.telemetry.is_some() {
        return Err("untraced run captured telemetry".into());
    }
    let traced = (exp.run_cell)(ctx, cell, Some(full.clone()));
    if traced.report != untraced.report {
        return Err("recording perturbed the run: traced report differs from untraced".into());
    }
    let rec = traced
        .telemetry
        .as_deref()
        .ok_or("traced run captured no telemetry")?;
    if rec.dropped() != 0 {
        return Err(format!("full recording evicted {} records", rec.dropped()));
    }
    let bytes = render_trace_file(&traced, &[]);
    let summary = validate_trace(&bytes).map_err(|e| format!("trace-v1 schema: {e}"))?;

    let mut other_ctx = *ctx;
    other_ctx.shards = if ctx.shards == 1 { 2 } else { 1 };
    let other = (exp.run_cell)(&other_ctx, cell, Some(full));
    if other.report != traced.report {
        return Err(format!(
            "report differs between {} and {} shards",
            ctx.shards, other_ctx.shards
        ));
    }
    if render_trace_file(&other, &[]) != bytes {
        return Err(format!(
            "trace bytes differ between {} and {} shards",
            ctx.shards, other_ctx.shards
        ));
    }
    let hist = rec
        .histograms()
        .expect("full recording aggregates")
        .to_json();
    let other_hist = other
        .telemetry
        .as_deref()
        .and_then(RunRecorder::histograms)
        .expect("full recording aggregates")
        .to_json();
    if hist != other_hist {
        return Err(format!(
            "histogram JSON differs between {} and {} shards",
            ctx.shards, other_ctx.shards
        ));
    }
    if let Some(audited) = traced.audited_max_edge_mean {
        let a = TraceAnalysis::from_records(rec.records().cloned());
        let empirical = a.max_edge_mean().map_or(0.0, |(_, m)| m);
        if (empirical - audited).abs() > 1e-9 * audited.abs().max(1.0) {
            return Err(format!(
                "delay audit disagrees with BudgetAuditor: trace {empirical} vs \
                 auditor {audited}"
            ));
        }
    }
    Ok(format!(
        "ok: {} records, 0 dropped, report unperturbed, trace + histograms \
         byte-identical at {} and {} shards",
        summary.records, ctx.shards, other_ctx.shards
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e1() -> TraceableExperiment {
        trace_registry()[0]
    }

    fn e17() -> TraceableExperiment {
        trace_registry()[1]
    }

    #[test]
    fn registry_ids_are_a_subset_of_the_main_registry() {
        let main: Vec<&str> = crate::registry().iter().map(|e| e.id).collect();
        for t in trace_registry() {
            assert!(main.contains(&t.id), "{} not in main registry", t.id);
        }
    }

    #[test]
    fn selection_pins_one_cell() {
        let ctx = RunCtx::smoke();
        let spec = (e1().spec)(&ctx);
        let cell = select_cell(&spec, &[("n".into(), "16".into())], 3).unwrap();
        assert_eq!(cell.u32("n"), 16);
        assert_eq!(cell.rep(), 3);
    }

    #[test]
    fn selection_errors_are_actionable() {
        let ctx = RunCtx::smoke();
        let spec = (e1().spec)(&ctx);
        let err = select_cell(&spec, &[("m".into(), "16".into())], 0).unwrap_err();
        assert!(err.contains("unknown axis") && err.contains("n"), "{err}");
        let err = select_cell(&spec, &[("n".into(), "17".into())], 0).unwrap_err();
        assert!(
            err.contains("axis values") && err.contains("8, 16, 64"),
            "{err}"
        );
        let err = select_cell(&spec, &[], 0).unwrap_err();
        assert!(err.contains("add axis selectors"), "{err}");
        let err = select_cell(&spec, &[("n".into(), "16".into())], 99).unwrap_err();
        assert!(err.contains("rep 99"), "{err}");
    }

    #[test]
    fn traced_e1_cell_passes_every_check() {
        let ctx = RunCtx::smoke();
        let spec = (e1().spec)(&ctx);
        let cell = select_cell(&spec, &[("n".into(), "8".into())], 0).unwrap();
        let summary = check_cell(&e1(), &ctx, &cell).unwrap();
        assert!(summary.starts_with("ok:"), "{summary}");
    }

    #[test]
    fn traced_e17_adversarial_cell_cross_checks_the_auditor() {
        let ctx = RunCtx::smoke();
        let spec = (e17().spec)(&ctx);
        let cell = select_cell(
            &spec,
            &[
                ("strategy".into(), "burst".into()),
                ("budget".into(), "4".into()),
            ],
            0,
        )
        .unwrap();
        let summary = check_cell(&e17(), &ctx, &cell).unwrap();
        assert!(summary.starts_with("ok:"), "{summary}");
        let run = (e17().run_cell)(&ctx, &cell, Some(Recording::full()));
        assert!(run.audited_max_edge_mean.is_some());
        let report = analysis_report(&run);
        assert!(report.contains("auditor cross-check"), "{report}");
        assert!(report.contains("agree"), "{report}");
        assert!(!report.contains("DISAGREE"), "{report}");
        assert_eq!(run.bound, 4.0);
    }

    #[test]
    fn trace_file_carries_meta_and_chains_resolve() {
        let ctx = RunCtx::smoke();
        let spec = (e1().spec)(&ctx);
        let cell = select_cell(&spec, &[("n".into(), "8".into())], 1).unwrap();
        let run = (e1().run_cell)(&ctx, &cell, Some(Recording::full().payloads(true)));
        let file = render_trace_file(&run, &trace_meta("e1", &ctx, &cell));
        let first = file.lines().next().unwrap();
        assert!(first.contains("\"experiment\":\"e1\""), "{first}");
        assert!(first.contains("\"cell\":\"n=8, rep=1\""), "{first}");
        validate_trace(&file).unwrap();
        let chain = render_chain(&run, 0, 0, 8);
        assert!(chain.contains("causal chain"), "{chain}");
        assert!(chain.contains("#0 e0"), "{chain}");
        assert!(render_chain(&run, 9999, 0, 8).contains("no trace record"));
        let analysis = analysis_report(&run);
        assert!(analysis.contains("definition-1 delay audit"), "{analysis}");
        // Small-sample empirical means may legally exceed the expected-delay
        // bound; the audit must still print a verdict against it per edge.
        assert!(analysis.contains("bound=1.000000"), "{analysis}");
    }

    #[test]
    fn capped_recording_notes_the_eviction_in_the_report() {
        let ctx = RunCtx::smoke();
        let spec = (e1().spec)(&ctx);
        let cell = select_cell(&spec, &[("n".into(), "8".into())], 0).unwrap();
        let run = (e1().run_cell)(&ctx, &cell, Some(Recording::ring(4)));
        assert!(run.recorder().dropped() > 0);
        let report = analysis_report(&run);
        assert!(report.contains("evicted by the retention cap"), "{report}");
    }
}
