//! Command-line harness regenerating every experiment in `EXPERIMENTS.md`.
//!
//! ```text
//! abe-experiments                 # run everything at quick scale
//! abe-experiments --full          # paper-scale sweeps
//! abe-experiments --smoke         # minimal grids (CI perf gate)
//! abe-experiments e1 e4 e6        # a subset
//! abe-experiments --threads 8     # sweep-engine worker count
//! abe-experiments --shards 2      # parallel kernel shards inside each run
//! abe-experiments --json PATH     # machine-readable output (see below)
//! abe-experiments --list          # show the registry
//! abe-experiments --out FILE      # additionally write markdown to FILE
//! abe-experiments --csv DIR       # additionally write one CSV per experiment
//! ```
//!
//! `--json PATH` emits one self-describing document per experiment
//! (schema `abe-bench/sweep-v1`): if exactly one experiment is selected
//! and `PATH` ends in `.json` it is written to that file, otherwise
//! `PATH` is treated as a directory receiving `<id>.json` per experiment.
//! The `"sweep"` block of each document is byte-identical for any
//! `--threads` value.
//!
//! The `campaign` subcommand runs the declarative scenario corpus
//! instead of the hand-written registry:
//!
//! ```text
//! abe-experiments campaign                   # run scenarios/, diff goldens
//! abe-experiments campaign --bless           # rewrite the goldens
//! abe-experiments campaign --fuzz 32         # + 32 seeded random scenarios
//! abe-experiments campaign --fuzz-seed 7     # ... reproducibly
//! ```
//!
//! The campaign exits nonzero on any golden drift, missing golden, or
//! outcome-oracle violation. See `docs/SCENARIO.md`.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use abe_bench::{registry, sweep, trace_cli, RunCtx, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("campaign") {
        return campaign_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return trace_main(&args[1..]);
    }
    let mut scale = Scale::Quick;
    let mut selected: Vec<String> = Vec::new();
    let mut out_file: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut threads: usize = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut shards: u32 = 1;
    let mut list_only = false;

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--smoke" => scale = Scale::Smoke,
            "--list" => list_only = true,
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match iter.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => {
                    eprintln!("--shards requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a file or directory path");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match iter.next() {
                Some(path) => out_file = Some(path),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => match iter.next() {
                Some(dir) => csv_dir = Some(dir),
                None => {
                    eprintln!("--csv requires a directory path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            id if id.starts_with('-') => {
                eprintln!("unknown flag: {id} (try --help)");
                return ExitCode::FAILURE;
            }
            id => selected.push(id.to_ascii_lowercase()),
        }
    }

    let experiments = registry();
    if list_only {
        for e in &experiments {
            println!("{:>4}  {}", e.id, e.about);
        }
        return ExitCode::SUCCESS;
    }

    for id in &selected {
        if !experiments.iter().any(|e| e.id == id) {
            eprintln!("unknown experiment id: {id} (try --list)");
            return ExitCode::FAILURE;
        }
    }

    let to_run: Vec<_> = experiments
        .iter()
        .filter(|e| selected.is_empty() || selected.iter().any(|s| s == e.id))
        .collect();

    // Single-file JSON mode only makes sense for a single experiment.
    if let Some(path) = &json_path {
        if path.ends_with(".json") && to_run.len() != 1 {
            eprintln!(
                "--json {path}: a .json file path needs exactly one selected experiment \
                 ({} selected); pass a directory instead",
                to_run.len()
            );
            return ExitCode::FAILURE;
        }
    }

    let mut ctx = RunCtx::new(scale, threads);
    ctx.shards = shards;
    let mut rendered = String::new();
    for e in to_run {
        let started = Instant::now();
        eprintln!(
            "running {} ({}) [{} scale, {threads} threads, {shards} shards] ...",
            e.id,
            e.about,
            scale.name()
        );
        let report = (e.run)(&ctx);
        eprintln!(
            "  done in {:.1?} ({} cells, sweep {:.1?})",
            started.elapsed(),
            report.sweep.cells.len(),
            report.sweep.wall_clock
        );
        let section = report.to_string();
        println!("{section}");
        rendered.push_str(&section);
        rendered.push('\n');
        if let Some(dir) = &csv_dir {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("failed to create {dir}: {err}");
                return ExitCode::FAILURE;
            }
            let path = format!("{dir}/{}.csv", e.id);
            match std::fs::File::create(&path)
                .and_then(|mut f| f.write_all(report.table.to_csv().as_bytes()))
            {
                Ok(()) => eprintln!("  wrote {path}"),
                Err(err) => {
                    eprintln!("failed to write {path}: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = &json_path {
            let document = sweep::json::document(&report, scale.name());
            let target = if path.ends_with(".json") {
                path.clone()
            } else {
                format!("{path}/{}.json", e.id)
            };
            if let Err(err) = write_creating_dirs(&target, document.as_bytes()) {
                eprintln!("failed to write {target}: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!("  wrote {target}");
        }
    }

    if let Some(path) = out_file {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(rendered.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(err) => {
                eprintln!("failed to write {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}

/// The `trace` subcommand: re-run one grid cell of a traceable
/// experiment with telemetry recording on, emit `trace-v1` JSONL and
/// the analysis report, or run the differential `--check`.
fn trace_main(args: &[String]) -> ExitCode {
    use abe_core::Recording;

    let mut scale = Scale::Quick;
    let mut experiment: Option<String> = None;
    let mut selectors: Vec<(String, String)> = Vec::new();
    let mut rep: u64 = 0;
    let mut threads: usize = 1;
    let mut shards: u32 = 1;
    let mut out: Option<String> = None;
    let mut cap: Option<usize> = None;
    let mut chain: Option<(u32, u64)> = None;
    let mut check = false;
    let mut list_only = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--smoke" => scale = Scale::Smoke,
            "--list" => list_only = true,
            "--check" => check = true,
            "--cell" => match iter.next().and_then(|v| v.split_once('=')) {
                Some((k, v)) => selectors.push((k.to_string(), v.to_string())),
                None => {
                    eprintln!("--cell requires an AXIS=VALUE pair");
                    return ExitCode::FAILURE;
                }
            },
            "--rep" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(r) => rep = r,
                None => {
                    eprintln!("--rep requires an unsigned integer");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match iter.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => {
                    eprintln!("--shards requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--cap" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cap = Some(n),
                None => {
                    eprintln!("--cap requires an unsigned integer");
                    return ExitCode::FAILURE;
                }
            },
            "--chain" => {
                let parsed = iter.next().and_then(|v| {
                    let (e, s) = v.split_once(':')?;
                    Some((e.parse::<u32>().ok()?, s.parse::<u64>().ok()?))
                });
                match parsed {
                    Some(pair) => chain = Some(pair),
                    None => {
                        eprintln!("--chain requires EDGE:SEQ (two unsigned integers)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "abe-experiments trace — re-run one grid cell with recording on\n\n\
                     USAGE:\n  abe-experiments trace EXPERIMENT [--smoke|--quick|--full]\n\
                     [--cell AXIS=VALUE]... [--rep N] [--shards N] [--threads N]\n\
                     [--out FILE] [--cap N] [--chain EDGE:SEQ] [--check] [--list]\n\n\
                     --cell AXIS=VALUE  pin one grid coordinate (repeatable); the\n\
                                        selectors must identify exactly one combination\n\
                     --rep N            repetition index on the seed axis (default 0)\n\
                     --out FILE         write the trace-v1 JSONL file (see\n\
                                        docs/TRACE_JSON.md); bytes are identical at any\n\
                                        --threads/--shards setting\n\
                     --cap N            retain only the most recent N records\n\
                     --chain EDGE:SEQ   print the causal chain from that message\n\
                     --check            differential mode: recording on/off report\n\
                                        equality, zero drops, schema validity, shard\n\
                                        byte-identity, auditor cross-check\n\
                     --list             show the traceable experiments"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown trace flag: {flag} (try --help)");
                return ExitCode::FAILURE;
            }
            id => experiment = Some(id.to_ascii_lowercase()),
        }
    }

    let traceable = trace_cli::trace_registry();
    if list_only {
        for t in &traceable {
            println!("{:>4}  {}", t.id, t.about);
        }
        return ExitCode::SUCCESS;
    }
    let Some(id) = experiment else {
        eprintln!("trace needs an experiment id (try `trace --list`)");
        return ExitCode::FAILURE;
    };
    let Some(exp) = traceable.iter().find(|t| t.id == id) else {
        eprintln!("experiment {id} is not traceable (try `trace --list`)");
        return ExitCode::FAILURE;
    };

    let mut ctx = RunCtx::new(scale, threads);
    ctx.shards = shards;
    let spec = (exp.spec)(&ctx);
    let cell = match trace_cli::select_cell(&spec, &selectors, rep) {
        Ok(cell) => cell,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "tracing {id} cell [{}] (seed {}) at {} scale, {shards} shards",
        cell.label(),
        cell.seed(),
        scale.name()
    );

    if check {
        return match trace_cli::check_cell(exp, &ctx, &cell) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("check failed: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let recording = match cap {
        Some(n) => Recording::ring(n).payloads(true).histograms(true),
        None => Recording::full().payloads(true).histograms(true),
    };
    let run = (exp.run_cell)(&ctx, &cell, Some(recording));
    if let Some(path) = &out {
        let file =
            trace_cli::render_trace_file(&run, &trace_cli::trace_meta(id.as_str(), &ctx, &cell));
        if let Err(err) = write_creating_dirs(path, file.as_bytes()) {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {path} ({} records, {} dropped)",
            run.recorder().len(),
            run.recorder().dropped()
        );
    }
    print!("{}", trace_cli::analysis_report(&run));
    if let Some((edge, seq)) = chain {
        print!("\n{}", trace_cli::render_chain(&run, edge, seq, 64));
    }
    ExitCode::SUCCESS
}

/// The `campaign` subcommand: run the scenario corpus against its
/// goldens, optionally followed by a seeded fuzz pass.
fn campaign_main(args: &[String]) -> ExitCode {
    use abe_scenario::campaign::{check_oracles, document, CampaignOptions};
    use abe_scenario::{compile, fuzz};

    let mut opts = CampaignOptions {
        scenarios_dir: PathBuf::from("scenarios"),
        goldens_dir: PathBuf::from("scenarios/goldens"),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        shards: 1,
        bless: false,
    };
    let mut fuzz_count: u32 = 0;
    let mut fuzz_seed: u64 = 0;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--bless" => opts.bless = true,
            "--scenarios" => match iter.next() {
                Some(dir) => opts.scenarios_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--scenarios requires a directory path");
                    return ExitCode::FAILURE;
                }
            },
            "--goldens" => match iter.next() {
                Some(dir) => opts.goldens_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--goldens requires a directory path");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => {
                    eprintln!("--threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match iter.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => opts.shards = n,
                _ => {
                    eprintln!("--shards requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz" => match iter.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => fuzz_count = n,
                None => {
                    eprintln!("--fuzz requires a scenario count");
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz-seed" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => fuzz_seed = s,
                None => {
                    eprintln!("--fuzz-seed requires an unsigned integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "abe-experiments campaign — run the declarative scenario corpus\n\n\
                     USAGE:\n  abe-experiments campaign [--scenarios DIR] [--goldens DIR]\n\
                     [--threads N] [--shards N] [--bless] [--fuzz N] [--fuzz-seed S]\n\n\
                     --scenarios DIR  corpus of .abes files (default: scenarios)\n\
                     --goldens DIR    committed goldens (default: scenarios/goldens)\n\
                     --shards N       parallel-kernel shards per cell run (documents\n\
                                      are byte-identical for any N)\n\
                     --bless          rewrite goldens from this run\n\
                     --fuzz N         also run N seeded random scenarios through the\n\
                                      outcome + determinism oracles\n\
                     --fuzz-seed S    seed for --fuzz (default 0); a failing scenario\n\
                                      is reproducible from its printed seed\n\n\
                     Exits nonzero on any golden drift, missing golden, or oracle\n\
                     violation. See docs/SCENARIO.md."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown campaign argument: {other} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        "campaign: corpus {} vs goldens {} [{} threads, {} shards]{}",
        opts.scenarios_dir.display(),
        opts.goldens_dir.display(),
        opts.threads,
        opts.shards,
        if opts.bless { " (blessing)" } else { "" }
    );
    let report = match abe_scenario::run_campaign(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot list {}: {e}", opts.scenarios_dir.display());
            return ExitCode::FAILURE;
        }
    };
    if report.results.is_empty() {
        eprintln!(
            "no .abes scenarios found in {}",
            opts.scenarios_dir.display()
        );
        return ExitCode::FAILURE;
    }
    print!("{}", report.render());
    let mut ok = report.ok();

    if fuzz_count > 0 {
        eprintln!("fuzz: {fuzz_count} scenarios from seed {fuzz_seed}");
        let mut failures = 0u32;
        for scenario in fuzz::corpus(fuzz_count, fuzz_seed) {
            let compiled = match compile(&scenario) {
                Ok(c) => c,
                Err(e) => {
                    println!("FUZZ    {}: does not compile: {e}", scenario.name);
                    failures += 1;
                    continue;
                }
            };
            let (a, b) = match (compiled.run(opts.threads), compiled.run(1)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    println!("FUZZ    {}: run failed: {e}", scenario.name);
                    failures += 1;
                    continue;
                }
            };
            if document(&scenario, &a) != document(&scenario, &b) {
                println!(
                    "FUZZ    {}: document differs between {} threads and 1",
                    scenario.name, opts.threads
                );
                failures += 1;
                continue;
            }
            let oracle = check_oracles(&scenario, &a);
            if !oracle.ok() {
                println!(
                    "FUZZ    {}: {} of {} cells violate the outcome oracles:",
                    scenario.name,
                    oracle.violations.len(),
                    oracle.cells_checked
                );
                for v in oracle.violations.iter().take(3) {
                    println!("        {v}");
                }
                failures += 1;
            }
        }
        println!(
            "fuzz: {}/{fuzz_count} scenarios ok (seed {fuzz_seed})",
            fuzz_count - failures
        );
        ok &= failures == 0;
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Writes `bytes` to `path`, creating missing parent directories.
fn write_creating_dirs(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::File::create(path).and_then(|mut f| f.write_all(bytes))
}

fn print_help() {
    println!(
        "abe-experiments — regenerate the ABE-networks evaluation\n\n\
         USAGE:\n  abe-experiments [--full|--quick|--smoke] [--threads N] [--json PATH]\n\
                  [--list] [--out FILE] [--csv DIR] [IDS...]\n\n\
         IDS: e1 .. e22 (default: all). See DESIGN.md section 5 for the\n\
         experiment-to-paper-claim mapping.\n\n\
         --smoke     minimal grids (CI perf gate)\n\
         --threads N sweep-engine worker count (default: all cores);\n\
                     results are bit-identical for any N\n\
         --shards N  deterministic parallel kernel shards per simulation\n\
                     (default 1 = sequential); results are bit-identical\n\
                     for any N\n\
         --json PATH one self-describing JSON document per experiment\n\
                     (single .json file for one experiment, else a directory)\n\n\
         SUBCOMMANDS:\n  campaign  run the declarative scenario corpus against its goldens\n\
                   (see `abe-experiments campaign --help` and docs/SCENARIO.md)\n\
  trace     re-run one grid cell with telemetry recording on, emitting\n\
                   trace-v1 JSONL and an analysis report (see\n\
                   `abe-experiments trace --help` and docs/TRACE_JSON.md)"
    );
}
