//! Command-line harness regenerating every experiment in `EXPERIMENTS.md`.
//!
//! ```text
//! abe-experiments                 # run everything at quick scale
//! abe-experiments --full          # paper-scale sweeps
//! abe-experiments e1 e4 e6        # a subset
//! abe-experiments --list          # show the registry
//! abe-experiments --out FILE      # additionally write markdown to FILE
//! abe-experiments --csv DIR       # additionally write one CSV per experiment
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

use abe_bench::{registry, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut selected: Vec<String> = Vec::new();
    let mut out_file: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut list_only = false;

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--list" => list_only = true,
            "--out" => match iter.next() {
                Some(path) => out_file = Some(path),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => match iter.next() {
                Some(dir) => csv_dir = Some(dir),
                None => {
                    eprintln!("--csv requires a directory path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            id if id.starts_with('-') => {
                eprintln!("unknown flag: {id} (try --help)");
                return ExitCode::FAILURE;
            }
            id => selected.push(id.to_ascii_lowercase()),
        }
    }

    let experiments = registry();
    if list_only {
        for e in &experiments {
            println!("{:>4}  {}", e.id, e.about);
        }
        return ExitCode::SUCCESS;
    }

    for id in &selected {
        if !experiments.iter().any(|e| e.id == id) {
            eprintln!("unknown experiment id: {id} (try --list)");
            return ExitCode::FAILURE;
        }
    }

    let to_run: Vec<_> = experiments
        .iter()
        .filter(|e| selected.is_empty() || selected.iter().any(|s| s == e.id))
        .collect();

    let mut rendered = String::new();
    for e in to_run {
        let started = Instant::now();
        eprintln!("running {} ({}) ...", e.id, e.about);
        let report = (e.run)(scale);
        eprintln!("  done in {:.1?}", started.elapsed());
        let section = report.to_string();
        println!("{section}");
        rendered.push_str(&section);
        rendered.push('\n');
        if let Some(dir) = &csv_dir {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("failed to create {dir}: {err}");
                return ExitCode::FAILURE;
            }
            let path = format!("{dir}/{}.csv", e.id);
            match std::fs::File::create(&path)
                .and_then(|mut f| f.write_all(report.table.to_csv().as_bytes()))
            {
                Ok(()) => eprintln!("  wrote {path}"),
                Err(err) => {
                    eprintln!("failed to write {path}: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if let Some(path) = out_file {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(rendered.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(err) => {
                eprintln!("failed to write {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}

fn print_help() {
    println!(
        "abe-experiments — regenerate the ABE-networks evaluation\n\n\
         USAGE:\n  abe-experiments [--full|--quick] [--list] [--out FILE] [--csv DIR] [IDS...]\n\n\
         IDS: e1 .. e13 (default: all). See DESIGN.md section 5 for the\n\
         experiment-to-paper-claim mapping."
    );
}
