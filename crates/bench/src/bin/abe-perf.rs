//! Kernel macro-benchmark harness: the perf trajectory's data source.
//!
//! ```text
//! abe-perf                  # full suite, writes BENCH_kernel.json
//! abe-perf --smoke          # minimal grids (CI perf gate)
//! abe-perf --out PATH       # write the JSON document elsewhere
//! ```
//!
//! Runs the fixed suites of [`abe_bench::perf`] (queue churn against both
//! queue backends, ring elections up to 10⁶ nodes, fault-storm dispatch)
//! single-threaded, prints a human summary, and writes one
//! `abe-bench/kernel-v1` JSON document. Run from the repo root so the
//! default output path lands `BENCH_kernel.json` where the perf
//! trajectory expects it; see `docs/BENCH_JSON.md` for the schema.

use std::io::Write;
use std::process::ExitCode;

use abe_bench::perf::{self, PerfMode};

fn main() -> ExitCode {
    let mut mode = PerfMode::Full;
    let mut out = String::from("BENCH_kernel.json");
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => mode = PerfMode::Smoke,
            "--full" => mode = PerfMode::Full,
            "--out" => match iter.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "abe-perf — kernel macro-benchmarks (queue churn, ring elections, \
                     fault storms)\n\nUSAGE:\n  abe-perf [--smoke|--full] [--out PATH]\n\n\
                     Writes an abe-bench/kernel-v1 JSON document (default: \
                     BENCH_kernel.json in the current directory)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        "running kernel perf suites [{} mode, 1 thread] ...",
        mode.name()
    );
    let bench = perf::run(mode);

    for suite in &bench.suites {
        println!("## {}", suite.name);
        for cell in &suite.cells {
            println!(
                "  {:<40} {:>12} events  {:>8.3}s  {:>12.0} events/s",
                cell.label(),
                cell.events,
                cell.wall_seconds,
                cell.events_per_sec(),
            );
        }
    }
    println!(
        "## churn speedup: {:.2}x (indexed {:.0} ops/s vs heap baseline {:.0} ops/s)",
        bench.churn.speedup(),
        bench.churn.indexed_events_per_sec,
        bench.churn.baseline_events_per_sec,
    );

    let document = bench.to_json();
    match std::fs::File::create(&out).and_then(|mut f| f.write_all(document.as_bytes())) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(err) => {
            eprintln!("failed to write {out}: {err}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
