//! Re-export of the [`abe_sweep`] engine plus the `sweep-v1` document
//! renderer.
//!
//! The engine itself (specs, cells, metrics, `run_sweep`) lives in the
//! `abe-sweep` crate so that other frontends — most importantly the
//! `abe-scenario` compiler — can drive it without depending on this
//! harness. Everything historically reachable as `abe_bench::sweep::*`
//! still resolves here.

pub use abe_sweep::*;

pub mod json {
    //! Self-describing JSON documents for experiment sweeps.
    //!
    //! No serde is available in the build container, so the harness renders
    //! JSON by hand (string primitives come from [`abe_sweep::json`]).
    //! Determinism is part of the format's contract: everything under the
    //! `"sweep"` key is a pure function of the sweep specification (see
    //! [`SweepOutcome::metrics_json`](super::SweepOutcome::metrics_json)),
    //! so two runs with different `--threads` settings differ only in the
    //! `"engine"` block.
    //!
    //! Document shape (schema `abe-bench/sweep-v1`):
    //!
    //! ```json
    //! {
    //!   "schema": "abe-bench/sweep-v1",
    //!   "experiment": "e1",
    //!   "title": "...",
    //!   "claim": "...",
    //!   "scale": "smoke",
    //!   "engine": {"threads": 2, "base_seed": 0, "cell_count": 30,
    //!              "wall_clock_seconds": 0.41},
    //!   "findings": ["..."],
    //!   "table_csv": "n,messages...\n...",
    //!   "sweep": {"base_seed": 0, "axes": [...], "cells": [...], "groups": [...]}
    //! }
    //! ```

    pub use abe_sweep::json::{escape, json_str};

    use crate::ExperimentReport;

    /// Renders the complete self-describing document for one experiment.
    ///
    /// `scale` is the harness scale name (`smoke` / `quick` / `full`). The
    /// `"sweep"` block is byte-identical across worker counts; the
    /// `"engine"` block records how this particular run was executed.
    pub fn document(report: &ExperimentReport, scale: &str) -> String {
        let findings: Vec<String> = report.findings.iter().map(|f| json_str(f)).collect();
        format!(
            "{{\"schema\":\"abe-bench/sweep-v1\",\
             \"experiment\":{experiment},\
             \"title\":{title},\
             \"claim\":{claim},\
             \"scale\":{scale},\
             \"engine\":{{\"threads\":{threads},\"base_seed\":{base_seed},\
             \"cell_count\":{cell_count},\"wall_clock_seconds\":{wall}}},\
             \"findings\":[{findings}],\
             \"table_csv\":{table},\
             \"sweep\":{sweep}}}",
            experiment = json_str(&report.id.to_ascii_lowercase()),
            title = json_str(report.title),
            claim = json_str(report.claim),
            scale = json_str(scale),
            threads = report.sweep.threads,
            base_seed = report.sweep.base_seed,
            cell_count = report.sweep.cells.len(),
            wall = abe_stats::json_f64(report.sweep.wall_clock.as_secs_f64()),
            findings = findings.join(","),
            table = json_str(&report.table.to_csv()),
            sweep = report.sweep.metrics_json(),
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::sweep::{run_sweep, CellMetrics, SweepSpec};
        use crate::ExperimentReport;
        use abe_stats::Table;

        fn sample_report() -> ExperimentReport {
            let spec = SweepSpec::new().axis_u32("n", &[2, 4]).seeds(2);
            let sweep = run_sweep(&spec, 1, |cell| {
                CellMetrics::new().metric("m", f64::from(cell.u32("n")))
            })
            .unwrap();
            let mut table = Table::new(&["n", "m"]);
            table.row(&["2", "2"]);
            ExperimentReport {
                id: "E0",
                title: "sample \"quoted\" title",
                claim: "line one\nline two",
                table,
                findings: vec!["found α".to_string()],
                sweep,
            }
        }

        #[test]
        fn document_embeds_all_sections() {
            let doc = document(&sample_report(), "quick");
            assert!(doc.starts_with("{\"schema\":\"abe-bench/sweep-v1\""));
            assert!(doc.contains("\"experiment\":\"e0\""));
            assert!(doc.contains("\"scale\":\"quick\""));
            assert!(doc.contains("\"title\":\"sample \\\"quoted\\\" title\""));
            assert!(doc.contains("\"claim\":\"line one\\nline two\""));
            assert!(doc.contains("\"cell_count\":4"));
            assert!(doc.contains("\"findings\":[\"found α\"]"));
            assert!(doc.contains("\"sweep\":{\"base_seed\":0"));
        }

        #[test]
        fn sweep_block_is_thread_count_independent() {
            let spec = SweepSpec::new().axis_u32("n", &[2, 4]).seeds(3);
            let run = |cell: &crate::sweep::Cell| {
                CellMetrics::new().metric("m", f64::from(cell.u32("n")) + cell.rep() as f64)
            };
            let a = run_sweep(&spec, 1, run).unwrap();
            let b = run_sweep(&spec, 8, run).unwrap();
            assert_eq!(a.metrics_json(), b.metrics_json());
        }
    }
}
