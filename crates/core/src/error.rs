//! Error types for model construction and network assembly.

use std::error::Error;
use std::fmt;

/// Error returned when a model parameter is outside its valid domain.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidParamError {
    /// Which parameter was rejected (e.g. `"success_prob"`).
    pub param: &'static str,
    /// Human-readable constraint (e.g. `"must lie in (0, 1]"`).
    pub constraint: &'static str,
    /// The offending value rendered as text.
    pub value: String,
}

impl InvalidParamError {
    /// Creates an error for `param` violating `constraint` with `value`.
    pub fn new(param: &'static str, constraint: &'static str, value: impl fmt::Display) -> Self {
        Self {
            param,
            constraint,
            value: value.to_string(),
        }
    }
}

impl fmt::Display for InvalidParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid parameter `{}`: {} (got {})",
            self.param, self.constraint, self.value
        )
    }
}

impl Error for InvalidParamError {}

/// Error returned by topology constructors and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A topology must contain at least one node.
    Empty,
    /// An edge referenced a node index `>= node_count`.
    NodeOutOfRange {
        /// The offending node index.
        index: u32,
        /// Number of nodes in the topology.
        node_count: u32,
    },
    /// A random-graph builder failed to produce a strongly connected graph
    /// within its retry budget.
    NotConnected,
    /// A regular-graph degree was infeasible: `d = 0`, `d >= n`, or `n·d`
    /// odd (no d-regular graph on n nodes exists).
    InvalidDegree {
        /// Requested number of nodes.
        n: u32,
        /// Requested degree.
        d: u32,
    },
    /// A generator dimension exceeded the supported maximum.
    DimensionTooLarge {
        /// Requested dimension.
        dim: u32,
        /// Largest supported dimension.
        max: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology must contain at least one node"),
            TopologyError::NodeOutOfRange { index, node_count } => write!(
                f,
                "node index {index} out of range for topology of {node_count} nodes"
            ),
            TopologyError::NotConnected => {
                write!(
                    f,
                    "random graph was not strongly connected within retry budget"
                )
            }
            TopologyError::InvalidDegree { n, d } => {
                write!(f, "no {d}-regular graph on {n} nodes exists")
            }
            TopologyError::DimensionTooLarge { dim, max } => {
                write!(f, "dimension {dim} exceeds the supported maximum {max}")
            }
        }
    }
}

impl Error for TopologyError {}

/// A network-class contract violation detected during validation.
///
/// Produced by [`NetworkClass::validate`](crate::NetworkClass::validate)
/// when a configured component does not satisfy the class's definition
/// (Definition 1 of the paper for ABE; a hard delay bound for ABD).
#[derive(Debug, Clone, PartialEq)]
pub enum ClassViolation {
    /// The delay model's mean exceeds the ABE bound `δ`.
    MeanDelayExceedsDelta {
        /// Mean of the configured delay model, in seconds.
        mean: f64,
        /// The claimed bound `δ`, in seconds.
        delta: f64,
    },
    /// ABD requires a bounded delay support; the model is unbounded.
    DelayUnbounded,
    /// The delay support's upper bound exceeds the ABD bound.
    DelayExceedsBound {
        /// Supremum of the delay support, in seconds.
        sup: f64,
        /// The claimed hard bound, in seconds.
        bound: f64,
    },
    /// The clock specification allows rates outside `[s_low, s_high]`.
    ClockRateOutOfBounds {
        /// The clock spec's slowest rate.
        spec_low: f64,
        /// The clock spec's fastest rate.
        spec_high: f64,
        /// The class's `s_low`.
        s_low: f64,
        /// The class's `s_high`.
        s_high: f64,
    },
    /// The processing model's mean exceeds the ABE bound `γ`.
    ProcessingExceedsGamma {
        /// Mean of the configured processing model, in seconds.
        mean: f64,
        /// The claimed bound `γ`, in seconds.
        gamma: f64,
    },
}

impl fmt::Display for ClassViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassViolation::MeanDelayExceedsDelta { mean, delta } => {
                write!(f, "expected delay {mean}s exceeds the ABE bound delta = {delta}s")
            }
            ClassViolation::DelayUnbounded => {
                write!(f, "ABD networks require a bounded delay support")
            }
            ClassViolation::DelayExceedsBound { sup, bound } => {
                write!(f, "delay support reaches {sup}s, beyond the ABD bound {bound}s")
            }
            ClassViolation::ClockRateOutOfBounds {
                spec_low,
                spec_high,
                s_low,
                s_high,
            } => write!(
                f,
                "clock rates [{spec_low}, {spec_high}] fall outside the class bounds [{s_low}, {s_high}]"
            ),
            ClassViolation::ProcessingExceedsGamma { mean, gamma } => {
                write!(f, "expected processing time {mean}s exceeds gamma = {gamma}s")
            }
        }
    }
}

impl Error for ClassViolation {}

/// Top-level error for network assembly.
#[derive(Debug)]
pub enum BuildError {
    /// A model parameter was invalid.
    InvalidParam(InvalidParamError),
    /// The topology was invalid.
    Topology(TopologyError),
    /// A declared network class was violated by the configuration.
    Class(ClassViolation),
    /// A per-edge delay list had the wrong length.
    EdgeDelayCount {
        /// Number of supplied delay models.
        supplied: usize,
        /// Number of edges in the topology.
        edges: usize,
    },
    /// The fault plan referenced nodes/edges the topology does not have
    /// or used values outside their domain.
    Fault(crate::fault::FaultPlanError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidParam(e) => write!(f, "{e}"),
            BuildError::Topology(e) => write!(f, "{e}"),
            BuildError::Class(e) => write!(f, "network class violated: {e}"),
            BuildError::EdgeDelayCount { supplied, edges } => write!(
                f,
                "per-edge delay list has {supplied} entries but the topology has {edges} edges"
            ),
            BuildError::Fault(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::InvalidParam(e) => Some(e),
            BuildError::Topology(e) => Some(e),
            BuildError::Class(e) => Some(e),
            BuildError::EdgeDelayCount { .. } => None,
            BuildError::Fault(e) => Some(e),
        }
    }
}

impl From<InvalidParamError> for BuildError {
    fn from(e: InvalidParamError) -> Self {
        BuildError::InvalidParam(e)
    }
}

impl From<TopologyError> for BuildError {
    fn from(e: TopologyError) -> Self {
        BuildError::Topology(e)
    }
}

impl From<ClassViolation> for BuildError {
    fn from(e: ClassViolation) -> Self {
        BuildError::Class(e)
    }
}

impl From<crate::fault::FaultPlanError> for BuildError {
    fn from(e: crate::fault::FaultPlanError) -> Self {
        BuildError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_param_displays_all_fields() {
        let e = InvalidParamError::new("p", "must lie in (0, 1]", 1.5);
        let s = e.to_string();
        assert!(s.contains("`p`"));
        assert!(s.contains("(0, 1]"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn topology_error_messages() {
        assert!(TopologyError::Empty
            .to_string()
            .contains("at least one node"));
        let e = TopologyError::NodeOutOfRange {
            index: 9,
            node_count: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn class_violation_messages() {
        let v = ClassViolation::MeanDelayExceedsDelta {
            mean: 2.0,
            delta: 1.0,
        };
        assert!(v.to_string().contains("delta"));
        assert!(ClassViolation::DelayUnbounded
            .to_string()
            .contains("bounded"));
    }

    #[test]
    fn build_error_wraps_sources() {
        let e: BuildError = InvalidParamError::new("x", "positive", -1).into();
        assert!(e.source().is_some());
        let e: BuildError = TopologyError::Empty.into();
        assert!(e.source().is_some());
        let e = BuildError::EdgeDelayCount {
            supplied: 2,
            edges: 3,
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains('2'));
    }
}
