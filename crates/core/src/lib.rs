//! # abe-core — the ABE network model
//!
//! Runtime implementation of **asynchronous bounded expected delay (ABE)
//! networks** as defined in *Bakhshi, Endrullis, Fokkink, Pang —
//! "Asynchronous Bounded Expected Delay Networks" (PODC 2010)*, Definition 1:
//!
//! 1. a bound `δ` on the **expected** message delay is known (individual
//!    delays may be unbounded and are stochastically independent);
//! 2. bounds `0 < s_low ≤ s_high` on local clock speeds are known;
//! 3. a bound `γ` on the expected local-event processing time is known.
//!
//! The crate provides each ingredient as a composable model plus a runtime
//! that wires them into a deterministic discrete-event simulation:
//!
//! * [`delay`] — distribution families with exact analytic means, including
//!   the paper's lossy-channel [`delay::Retransmission`] model (mean
//!   `slot/p`) and heavy-tailed families;
//! * [`clock`] — per-node local clocks with bounded drift;
//! * [`topology`] — anonymous, port-addressed directed graphs (the
//!   election algorithm's unidirectional ring and richer shapes);
//! * [`AbeParams`] / [`NetworkClass`] — machine-checked network-class
//!   contracts (asynchronous / ABD / ABE, with `ABD ⊂ ABE`);
//! * [`Protocol`] / [`Ctx`] — the anonymous, port-based algorithm API;
//! * [`fault`] — deterministic fault injection (crash-stop / crash-recover
//!   schedules, random drops, partition windows, delay storms), composed
//!   via [`NetworkBuilder::fault`];
//! * [`adversary`] — budgeted scheduling adversaries that *choose* delays
//!   (Definition 1's adversarial clause) under an enforced per-edge
//!   expected-delay bound, composed via [`NetworkBuilder::adversary`];
//! * [`NetworkBuilder`] / [`Network`] — assembly and execution, producing a
//!   [`NetworkReport`] with message counts and experiment counters.
//!
//! ## Example: a token circling an ABE ring
//!
//! ```
//! use abe_core::delay::Exponential;
//! use abe_core::{Ctx, InPort, NetworkBuilder, OutPort, Protocol, Topology};
//! use abe_sim::RunLimits;
//!
//! /// Forwards a token around the ring a fixed number of times.
//! #[derive(Debug)]
//! struct TokenRing {
//!     is_initiator: bool,
//!     remaining: u32,
//! }
//!
//! impl Protocol for TokenRing {
//!     type Message = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
//!         if self.is_initiator {
//!             ctx.send(OutPort(0), ());
//!         }
//!     }
//!     fn on_message(&mut self, _from: InPort, _msg: (), ctx: &mut Ctx<'_, ()>) {
//!         if self.remaining > 0 {
//!             self.remaining -= 1;
//!             ctx.send(OutPort(0), ());
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = NetworkBuilder::new(Topology::unidirectional_ring(8)?)
//!     .delay(Exponential::from_mean(1.0)?)
//!     .seed(42)
//!     .build(|i| TokenRing { is_initiator: i == 0, remaining: 16 })?;
//! let (report, _net) = net.run(RunLimits::unbounded());
//! assert!(report.outcome.is_quiescent());
//! assert!(report.messages_delivered > 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
mod builder;
mod class;
pub mod clock;
pub mod delay;
mod error;
pub mod fault;
mod net;
mod protocol;
pub mod shard;
pub mod topology;

pub use abe_telemetry::{Recording, RunRecorder, TraceEvent, TraceRecord};
pub use adversary::{Adversary, AdversaryPlan, AdversaryStats, BudgetAuditor, SendView};
pub use builder::NetworkBuilder;
pub use class::{AbeParams, NetworkClass};
pub use error::{BuildError, ClassViolation, InvalidParamError, TopologyError};
pub use fault::{FaultPlan, FaultStats, OutcomeClass};
pub use net::{NetEvent, Network, NetworkReport, ShardTiming};
pub use protocol::{geometric_trials, Ctx, CtxEffects, InPort, Mark, OutPort, Protocol};
pub use topology::Topology;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{Deterministic, Exponential};
    use abe_sim::RunLimits;

    /// Node 0 emits `count` pings spaced one tick apart; everyone else
    /// counts what they receive and forwards nothing.
    #[derive(Debug)]
    struct Pinger {
        is_source: bool,
        to_send: u32,
        received: u32,
    }

    impl Protocol for Pinger {
        type Message = u32;

        fn on_tick(&mut self, ctx: &mut Ctx<'_, u32>) {
            if self.to_send > 0 {
                self.to_send -= 1;
                ctx.send(OutPort(0), self.to_send);
            }
        }

        fn on_message(&mut self, _from: InPort, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.received += 1;
            ctx.count("received", 1);
        }

        fn wants_tick(&self) -> bool {
            self.is_source && self.to_send > 0
        }
    }

    fn pinger_net(seed: u64) -> Network<Pinger> {
        NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Exponential::from_mean(1.0).unwrap())
            .seed(seed)
            .build(|i| Pinger {
                is_source: i == 0,
                to_send: if i == 0 { 5 } else { 0 },
                received: 0,
            })
            .unwrap()
    }

    #[test]
    fn network_runs_to_quiescence_and_counts() {
        let (report, net) = pinger_net(1).run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        assert_eq!(report.messages_sent, 5);
        assert_eq!(report.messages_delivered, 5);
        assert_eq!(report.in_flight, 0);
        assert_eq!(report.counter("received"), 5);
        assert_eq!(net.node(1).received, 5);
        assert_eq!(net.node_messages_sent(0), 5);
        assert_eq!(net.node_messages_received(1), 5);
        // Source ticked at least once per message.
        assert!(report.ticks >= 5);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let (a, _) = pinger_net(7).run(RunLimits::unbounded());
        let (b, _) = pinger_net(7).run(RunLimits::unbounded());
        assert_eq!(a, b);
        let (c, _) = pinger_net(8).run(RunLimits::unbounded());
        assert_ne!(a.end_time, c.end_time);
    }

    #[test]
    fn non_fifo_channels_can_reorder() {
        // With exponential delays and sequence-numbered pings, the receiver
        // observing any out-of-order pair proves non-FIFO delivery.
        #[derive(Debug)]
        struct SeqCheck {
            is_source: bool,
            to_send: u32,
            seen: Vec<u32>,
        }
        impl Protocol for SeqCheck {
            type Message = u32;
            fn on_tick(&mut self, ctx: &mut Ctx<'_, u32>) {
                if self.to_send > 0 {
                    let seq = 100 - self.to_send;
                    self.to_send -= 1;
                    ctx.send(OutPort(0), seq);
                }
            }
            fn on_message(&mut self, _from: InPort, msg: u32, _ctx: &mut Ctx<'_, u32>) {
                self.seen.push(msg);
            }
            fn wants_tick(&self) -> bool {
                self.is_source && self.to_send > 0
            }
        }
        let build = |fifo: bool, seed: u64| {
            NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
                .delay(Exponential::from_mean(5.0).unwrap())
                .fifo(fifo)
                .seed(seed)
                .build(|i| SeqCheck {
                    is_source: i == 0,
                    to_send: if i == 0 { 100 } else { 0 },
                    seen: vec![],
                })
                .unwrap()
        };
        // Non-FIFO: some seed shows reordering.
        let reordered = (0..20).any(|seed| {
            let (_, net) = build(false, seed).run(RunLimits::unbounded());
            net.node(1).seen.windows(2).any(|w| w[0] > w[1])
        });
        assert!(reordered, "exponential delays should reorder eventually");
        // FIFO: never reordered, for any seed.
        for seed in 0..20 {
            let (_, net) = build(true, seed).run(RunLimits::unbounded());
            assert!(
                net.node(1).seen.windows(2).all(|w| w[0] <= w[1]),
                "fifo violated at seed {seed}"
            );
        }
    }

    #[test]
    fn deterministic_delay_gives_exact_latency() {
        #[derive(Debug)]
        struct OneShot {
            fire: bool,
            got_at: Option<f64>,
        }
        impl Protocol for OneShot {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if self.fire {
                    ctx.send(OutPort(0), ());
                }
            }
            fn on_message(&mut self, _from: InPort, _msg: (), ctx: &mut Ctx<'_, ()>) {
                self.got_at = Some(ctx.local_time());
                ctx.stop_network();
            }
        }
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(2.5).unwrap())
            .build(|i| OneShot {
                fire: i == 0,
                got_at: None,
            })
            .unwrap();
        let (report, net) = net.run(RunLimits::unbounded());
        assert!(report.outcome.is_stopped());
        assert_eq!(report.end_time.as_secs(), 2.5);
        assert_eq!(net.node(1).got_at, Some(2.5));
    }

    #[test]
    fn processing_delay_adds_to_latency() {
        #[derive(Debug)]
        struct OneShot {
            fire: bool,
        }
        impl Protocol for OneShot {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if self.fire {
                    ctx.send(OutPort(0), ());
                }
            }
            fn on_message(&mut self, _from: InPort, _msg: (), ctx: &mut Ctx<'_, ()>) {
                ctx.stop_network();
            }
        }
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(2.0).unwrap())
            .processing(Deterministic::new(0.5).unwrap())
            .build(|i| OneShot { fire: i == 0 })
            .unwrap();
        let (report, _) = net.run(RunLimits::unbounded());
        assert_eq!(report.end_time.as_secs(), 2.5);
    }

    #[test]
    fn edge_delay_count_is_validated() {
        let err = NetworkBuilder::new(Topology::unidirectional_ring(3).unwrap())
            .edge_delays(vec![std::sync::Arc::new(Deterministic::zero()) as _])
            .build(|_| Pinger {
                is_source: false,
                to_send: 0,
                received: 0,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::EdgeDelayCount {
                supplied: 1,
                edges: 3
            }
        ));
    }

    #[test]
    fn class_violation_fails_build() {
        let class = NetworkClass::Abe(AbeParams::with_delta(0.5).unwrap());
        let err = NetworkBuilder::new(Topology::unidirectional_ring(3).unwrap())
            .delay(Exponential::from_mean(1.0).unwrap())
            .class(class)
            .build(|_| Pinger {
                is_source: false,
                to_send: 0,
                received: 0,
            })
            .unwrap_err();
        assert!(matches!(err, BuildError::Class(_)));
    }

    #[test]
    fn class_conforming_build_succeeds() {
        let class = NetworkClass::Abe(AbeParams::with_delta(1.0).unwrap());
        assert!(
            NetworkBuilder::new(Topology::unidirectional_ring(3).unwrap())
                .delay(Exponential::from_mean(1.0).unwrap())
                .class(class)
                .build(|_| Pinger {
                    is_source: false,
                    to_send: 0,
                    received: 0,
                })
                .is_ok()
        );
    }

    #[test]
    fn max_time_limit_interrupts_run() {
        let net = pinger_net(3);
        let (report, _) = net.run(RunLimits::until(abe_sim::SimTime::from_secs(0.5)));
        assert_eq!(report.outcome, abe_sim::RunOutcome::MaxTime);
    }
}
