//! Directed communication topologies.
//!
//! The paper's election algorithm runs on **anonymous unidirectional
//! rings**; Theorem 1 and the synchroniser experiments use richer graphs.
//! A [`Topology`] is a directed multigraph over `n` nodes with stable edge
//! indices — protocols address neighbours through *ports* (positions in a
//! node's out-edge list), never through node identities, which is how the
//! runtime enforces anonymity.

use std::fmt;

use abe_sim::Xoshiro256PlusPlus;

use crate::error::TopologyError;

/// Index of a node in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a directed edge in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(u32);

impl EdgeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Reconstructs an [`EdgeId`] from a raw index held by the network runtime.
///
/// Not public API: topology indices are dense and issued only by
/// [`Topology`], so the runtime can round-trip them through its event type.
pub(crate) fn edge_id_from_raw(raw: u32) -> EdgeId {
    EdgeId(raw)
}

/// A directed edge `src → dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A directed communication graph with stable node and edge indices.
///
/// # Examples
///
/// ```
/// use abe_core::topology::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ring = Topology::unidirectional_ring(5)?;
/// assert_eq!(ring.node_count(), 5);
/// assert_eq!(ring.edge_count(), 5);
/// assert!(ring.is_strongly_connected());
/// assert_eq!(ring.diameter(), Some(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: u32,
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
}

impl Topology {
    /// Builds a topology from explicit `(src, dst)` pairs over `n` nodes.
    ///
    /// Self-loops and parallel edges are permitted (a self-loop models a
    /// node that can message itself, used by single-node rings).
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or any endpoint is out of range.
    pub fn from_edges(
        n: u32,
        pairs: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        let mut edges = Vec::new();
        let mut out = vec![Vec::new(); n as usize];
        let mut inc = vec![Vec::new(); n as usize];
        for (src, dst) in pairs {
            for &endpoint in &[src, dst] {
                if endpoint >= n {
                    return Err(TopologyError::NodeOutOfRange {
                        index: endpoint,
                        node_count: n,
                    });
                }
            }
            let id = EdgeId(edges.len() as u32);
            edges.push(Edge {
                src: NodeId(src),
                dst: NodeId(dst),
            });
            out[src as usize].push(id);
            inc[dst as usize].push(id);
        }
        Ok(Self { n, edges, out, inc })
    }

    /// Unidirectional ring `0 → 1 → … → n-1 → 0` (the paper's topology).
    ///
    /// A ring of size 1 is a self-loop, so the election algorithm's
    /// "message returns to its originator" reasoning still applies.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn unidirectional_ring(n: u32) -> Result<Self, TopologyError> {
        Self::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// Bidirectional ring: both orientations of each ring edge.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn bidirectional_ring(n: u32) -> Result<Self, TopologyError> {
        let forward = (0..n).map(|i| (i, (i + 1) % n));
        let backward = (0..n).map(|i| ((i + 1) % n, i));
        Self::from_edges(n, forward.chain(backward))
    }

    /// Path `0 ↔ 1 ↔ … ↔ n-1` (both directions of each segment).
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn line(n: u32) -> Result<Self, TopologyError> {
        let forward = (0..n.saturating_sub(1)).map(|i| (i, i + 1));
        let backward = (0..n.saturating_sub(1)).map(|i| (i + 1, i));
        Self::from_edges(n, forward.chain(backward))
    }

    /// Star with node 0 as hub, bidirectional spokes.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn star(n: u32) -> Result<Self, TopologyError> {
        let out = (1..n).map(|i| (0, i));
        let back = (1..n).map(|i| (i, 0));
        Self::from_edges(n, out.chain(back))
    }

    /// Complete directed graph (every ordered pair of distinct nodes).
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn complete(n: u32) -> Result<Self, TopologyError> {
        let pairs = (0..n).flat_map(move |i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)));
        Self::from_edges(n, pairs)
    }

    /// `width × height` torus (wrap-around grid), 4 bidirectional
    /// neighbours per node — a standard sensor-network layout.
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is 0.
    pub fn torus(width: u32, height: u32) -> Result<Self, TopologyError> {
        if width == 0 || height == 0 {
            return Err(TopologyError::Empty);
        }
        let n = width * height;
        let idx = move |x: u32, y: u32| (y % height) * width + (x % width);
        let mut pairs = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let here = idx(x, y);
                pairs.push((here, idx(x + 1, y)));
                pairs.push((here, idx(x, y + 1)));
                pairs.push((idx(x + 1, y), here));
                pairs.push((idx(x, y + 1), here));
            }
        }
        Self::from_edges(n, pairs)
    }

    /// `dim`-dimensional hypercube: `2^dim` nodes, an edge in **both**
    /// directions between every pair of nodes differing in exactly one
    /// bit. Diameter `dim`, degree `dim` — the classic log-diameter
    /// interconnect, and a natural shape for synchroniser sweeps beyond
    /// rings and tori.
    ///
    /// `dim = 0` is the single node with no edges.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DimensionTooLarge`] if `dim > 20`
    /// (over a million nodes).
    pub fn hypercube(dim: u32) -> Result<Self, TopologyError> {
        const MAX_DIM: u32 = 20;
        if dim > MAX_DIM {
            return Err(TopologyError::DimensionTooLarge { dim, max: MAX_DIM });
        }
        let n = 1u32 << dim;
        // Each ordered pair appears exactly once: i → i^bit for every
        // (i, bit), and the reverse edge arises at i^bit.
        let pairs = (0..n).flat_map(move |i| (0..dim).map(move |b| (i, i ^ (1 << b))));
        Self::from_edges(n, pairs)
    }

    /// Random `d`-regular graph on `n` nodes (configuration model), with
    /// **both** directions of every undirected edge, resampled until the
    /// pairing is simple (no self-loops or parallel edges) and the graph
    /// is connected. Deterministic in `(n, d, seed)`: randomness flows
    /// from the `"random-regular"` child stream of `seed`, independent of
    /// every simulation stream.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidDegree`] unless `1 ≤ d < n` and
    /// `n·d` is even (a d-regular graph exists), or
    /// [`TopologyError::NotConnected`] if no simple connected pairing is
    /// found within the internal retry budget.
    pub fn random_regular(n: u32, d: u32, seed: u64) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        if d == 0 || d >= n || !(n as u64 * d as u64).is_multiple_of(2) {
            return Err(TopologyError::InvalidDegree { n, d });
        }
        let mut rng = abe_sim::SeedStream::new(seed).stream("random-regular", 0);
        // Configuration model: d stubs per node, shuffled and paired;
        // reject pairings with loops/multi-edges and resample. For d ≥ 3
        // the acceptance probability is bounded away from zero, so the
        // retry budget is generous rather than tight.
        const RETRIES: u32 = 500;
        let mut stubs: Vec<u32> = (0..n)
            .flat_map(|i| std::iter::repeat_n(i, d as usize))
            .collect();
        for _ in 0..RETRIES {
            // Fisher–Yates shuffle driven by the dedicated stream.
            for i in (1..stubs.len()).rev() {
                let j = (rng.uniform_f64() * (i + 1) as f64) as usize;
                stubs.swap(i, j.min(i));
            }
            let mut seen = std::collections::HashSet::new();
            let mut simple = true;
            for pair in stubs.chunks_exact(2) {
                let (a, b) = (pair[0], pair[1]);
                if a == b || !seen.insert((a.min(b), a.max(b))) {
                    simple = false;
                    break;
                }
            }
            if !simple {
                continue;
            }
            let pairs = stubs
                .chunks_exact(2)
                .flat_map(|p| [(p[0], p[1]), (p[1], p[0])]);
            let topo = Self::from_edges(n, pairs)?;
            if topo.is_strongly_connected() {
                return Ok(topo);
            }
        }
        Err(TopologyError::NotConnected)
    }

    /// Erdős–Rényi digraph `G(n, p)` with both orientations sampled
    /// independently, retried until strongly connected.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotConnected`] if no strongly connected
    /// sample is found within `retries` attempts, or
    /// [`TopologyError::Empty`] if `n == 0`.
    pub fn erdos_renyi(
        n: u32,
        p: f64,
        rng: &mut Xoshiro256PlusPlus,
        retries: u32,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        for _ in 0..retries.max(1) {
            let mut pairs = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.uniform_f64() < p {
                        pairs.push((i, j));
                    }
                }
            }
            let topo = Self::from_edges(n, pairs)?;
            if topo.is_strongly_connected() {
                return Ok(topo);
            }
        }
        Err(TopologyError::NotConnected)
    }

    /// Symmetric Erdős–Rényi graph: each unordered pair is connected with
    /// probability `p` by **both** directed edges, retried until strongly
    /// connected. Suitable for wave algorithms that need
    /// [`reverse_port`](Self::reverse_port) everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotConnected`] if no connected sample is
    /// found within `retries` attempts, or [`TopologyError::Empty`] if
    /// `n == 0`.
    pub fn erdos_renyi_symmetric(
        n: u32,
        p: f64,
        rng: &mut Xoshiro256PlusPlus,
        retries: u32,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        for _ in 0..retries.max(1) {
            let mut pairs = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.uniform_f64() < p {
                        pairs.push((i, j));
                        pairs.push((j, i));
                    }
                }
            }
            let topo = Self::from_edges(n, pairs)?;
            if topo.is_strongly_connected() {
                return Ok(topo);
            }
        }
        Err(TopologyError::NotConnected)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// Iterator over `(EdgeId, Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), *e))
    }

    /// The endpoints of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` does not belong to this topology.
    pub fn edge(&self, edge: EdgeId) -> Edge {
        self.edges[edge.index()]
    }

    /// Out-edges of `node` in port order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out[node.index()]
    }

    /// In-edges of `node` in port order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.inc[node.index()]
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inc[node.index()].len()
    }

    /// The in-port index of `edge` at its destination.
    pub fn in_port(&self, edge: EdgeId) -> usize {
        let dst = self.edge(edge).dst;
        self.inc[dst.index()]
            .iter()
            .position(|&e| e == edge)
            .expect("edge is registered at its destination")
    }

    /// The out-port of `node` whose edge points back along the in-edge at
    /// `in_port`, if the reverse edge exists.
    ///
    /// This is the "bidirectional channel" convention used by wave
    /// algorithms (echo/PIF): a node can reply to whoever it heard from
    /// without learning any identity. Returns `None` on asymmetric edges
    /// (e.g. a unidirectional ring) or out-of-range ports.
    pub fn reverse_port(&self, node: NodeId, in_port: usize) -> Option<usize> {
        let edge_in = *self.inc.get(node.index())?.get(in_port)?;
        let src = self.edges[edge_in.index()].src;
        self.out[node.index()]
            .iter()
            .position(|&e| self.edges[e.index()].dst == src)
    }

    /// BFS hop distances from `from`; `None` for unreachable nodes.
    pub fn bfs_distances(&self, from: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.n as usize];
        let mut queue = std::collections::VecDeque::new();
        dist[from.index()] = Some(0);
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued nodes have distances");
            for &e in &self.out[u.index()] {
                let v = self.edges[e.index()].dst;
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether every node reaches every other node along directed edges.
    pub fn is_strongly_connected(&self) -> bool {
        if self.n == 1 {
            return true;
        }
        // Forward reachability from node 0, then reachability in the
        // reversed graph; both covering all nodes ⇔ strong connectivity.
        let forward_ok = self.bfs_distances(NodeId(0)).iter().all(|d| d.is_some());
        if !forward_ok {
            return false;
        }
        let reversed = Self::from_edges(self.n, self.edges.iter().map(|e| (e.dst.0, e.src.0)))
            .expect("reversing preserves validity");
        reversed
            .bfs_distances(NodeId(0))
            .iter()
            .all(|d| d.is_some())
    }

    /// Longest shortest-path distance over all ordered pairs, or `None`
    /// if the graph is not strongly connected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for node in self.nodes() {
            for d in self.bfs_distances(node) {
                best = best.max(d?);
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ring_structure() {
        let ring = Topology::unidirectional_ring(4).unwrap();
        assert_eq!(ring.node_count(), 4);
        assert_eq!(ring.edge_count(), 4);
        for node in ring.nodes() {
            assert_eq!(ring.out_degree(node), 1);
            assert_eq!(ring.in_degree(node), 1);
            let e = ring.edge(ring.out_edges(node)[0]);
            assert_eq!(e.src, node);
            assert_eq!(e.dst.index(), (node.index() + 1) % 4);
        }
    }

    #[test]
    fn single_node_ring_is_self_loop() {
        let ring = Topology::unidirectional_ring(1).unwrap();
        assert_eq!(ring.edge_count(), 1);
        let e = ring.edge(ring.out_edges(NodeId::new(0))[0]);
        assert_eq!(e.src, e.dst);
        assert!(ring.is_strongly_connected());
    }

    #[test]
    fn zero_nodes_rejected() {
        assert_eq!(
            Topology::unidirectional_ring(0).unwrap_err(),
            TopologyError::Empty
        );
        assert!(Topology::from_edges(0, []).is_err());
        assert!(Topology::torus(0, 3).is_err());
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = Topology::from_edges(3, [(0, 5)]).unwrap_err();
        assert_eq!(
            err,
            TopologyError::NodeOutOfRange {
                index: 5,
                node_count: 3
            }
        );
    }

    #[test]
    fn bidirectional_ring_degrees() {
        let ring = Topology::bidirectional_ring(5).unwrap();
        assert_eq!(ring.edge_count(), 10);
        for node in ring.nodes() {
            assert_eq!(ring.out_degree(node), 2);
            assert_eq!(ring.in_degree(node), 2);
        }
        assert!(ring.is_strongly_connected());
        assert_eq!(ring.diameter(), Some(2));
    }

    #[test]
    fn line_is_strongly_connected_bidirectionally() {
        let line = Topology::line(6).unwrap();
        assert!(line.is_strongly_connected());
        assert_eq!(line.diameter(), Some(5));
        let single = Topology::line(1).unwrap();
        assert_eq!(single.edge_count(), 0);
        assert!(single.is_strongly_connected());
    }

    #[test]
    fn star_has_hub() {
        let star = Topology::star(5).unwrap();
        assert_eq!(star.out_degree(NodeId::new(0)), 4);
        assert_eq!(star.in_degree(NodeId::new(0)), 4);
        for i in 1..5 {
            assert_eq!(star.out_degree(NodeId::new(i)), 1);
        }
        assert!(star.is_strongly_connected());
        assert_eq!(star.diameter(), Some(2));
    }

    #[test]
    fn complete_graph_diameter_one() {
        let k = Topology::complete(4).unwrap();
        assert_eq!(k.edge_count(), 12);
        assert_eq!(k.diameter(), Some(1));
    }

    #[test]
    fn torus_is_regular() {
        let t = Topology::torus(4, 3).unwrap();
        assert_eq!(t.node_count(), 12);
        for node in t.nodes() {
            assert_eq!(t.out_degree(node), 4);
            assert_eq!(t.in_degree(node), 4);
        }
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn ring_diameter_is_n_minus_one() {
        let ring = Topology::unidirectional_ring(7).unwrap();
        assert_eq!(ring.diameter(), Some(6));
    }

    #[test]
    fn disconnected_graph_detected() {
        let topo = Topology::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        assert!(!topo.is_strongly_connected());
        assert_eq!(topo.diameter(), None);
    }

    #[test]
    fn one_way_pair_is_not_strongly_connected() {
        let topo = Topology::from_edges(2, [(0, 1)]).unwrap();
        assert!(!topo.is_strongly_connected());
    }

    #[test]
    fn bfs_distances_on_ring() {
        let ring = Topology::unidirectional_ring(5).unwrap();
        let d = ring.bfs_distances(NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn in_port_maps_edges_to_positions() {
        let topo = Topology::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let edges: Vec<EdgeId> = topo.edges().map(|(id, _)| id).collect();
        assert_eq!(topo.in_port(edges[0]), 0);
        assert_eq!(topo.in_port(edges[1]), 1);
    }

    #[test]
    fn hypercube_structure() {
        let h = Topology::hypercube(3).unwrap();
        assert_eq!(h.node_count(), 8);
        assert_eq!(h.edge_count(), 24); // 2 · dim · 2^(dim-1)
        for node in h.nodes() {
            assert_eq!(h.out_degree(node), 3);
            assert_eq!(h.in_degree(node), 3);
            // Every neighbour differs in exactly one bit.
            for &e in h.out_edges(node) {
                let diff = (node.index() ^ h.edge(e).dst.index()).count_ones();
                assert_eq!(diff, 1);
            }
            // Every in-edge has its reverse (wave algorithms need this).
            for in_port in 0..h.in_degree(node) {
                assert!(h.reverse_port(node, in_port).is_some());
            }
        }
        assert!(h.is_strongly_connected());
        assert_eq!(h.diameter(), Some(3));
    }

    #[test]
    fn hypercube_degenerate_and_oversized() {
        let point = Topology::hypercube(0).unwrap();
        assert_eq!(point.node_count(), 1);
        assert_eq!(point.edge_count(), 0);
        assert!(point.is_strongly_connected());
        assert_eq!(Topology::hypercube(1).unwrap().edge_count(), 2);
        assert_eq!(
            Topology::hypercube(21).unwrap_err(),
            TopologyError::DimensionTooLarge { dim: 21, max: 20 }
        );
    }

    #[test]
    fn random_regular_is_regular_simple_and_deterministic() {
        let a = Topology::random_regular(16, 3, 7).unwrap();
        let b = Topology::random_regular(16, 3, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.is_strongly_connected());
        let mut undirected = std::collections::HashSet::new();
        for (_, e) in a.edges() {
            // No self-loops; each undirected pair carried by exactly two
            // directed edges.
            assert_ne!(e.src, e.dst);
            let key = (
                e.src.index().min(e.dst.index()),
                e.src.index().max(e.dst.index()),
            );
            undirected.insert(key);
        }
        assert_eq!(undirected.len() * 2, a.edge_count());
        for node in a.nodes() {
            assert_eq!(a.out_degree(node), 3);
            assert_eq!(a.in_degree(node), 3);
            for in_port in 0..a.in_degree(node) {
                assert!(a.reverse_port(node, in_port).is_some());
            }
        }
        // Different seeds give different graphs (overwhelmingly likely).
        assert_ne!(a, Topology::random_regular(16, 3, 8).unwrap());
    }

    #[test]
    fn random_regular_rejects_infeasible_degrees() {
        assert_eq!(
            Topology::random_regular(0, 2, 1).unwrap_err(),
            TopologyError::Empty
        );
        for (n, d) in [(8, 0), (4, 4), (4, 7), (5, 3)] {
            assert_eq!(
                Topology::random_regular(n, d, 1).unwrap_err(),
                TopologyError::InvalidDegree { n, d },
                "n={n} d={d}"
            );
        }
        // n·d even and d < n: the smallest cycle cases work.
        assert!(Topology::random_regular(3, 2, 1).is_ok());
        assert!(Topology::random_regular(4, 3, 1).is_ok());
    }

    #[test]
    fn erdos_renyi_is_connected_and_deterministic() {
        let mut rng_a = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut rng_b = Xoshiro256PlusPlus::seed_from_u64(11);
        let a = Topology::erdos_renyi(20, 0.3, &mut rng_a, 50).unwrap();
        let b = Topology::erdos_renyi(20, 0.3, &mut rng_b, 50).unwrap();
        assert!(a.is_strongly_connected());
        assert_eq!(a, b);
    }

    #[test]
    fn erdos_renyi_sparse_fails_connectivity() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        let err = Topology::erdos_renyi(30, 0.0, &mut rng, 3).unwrap_err();
        assert_eq!(err, TopologyError::NotConnected);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        let ring = Topology::unidirectional_ring(2).unwrap();
        let (eid, _) = ring.edges().next().unwrap();
        assert_eq!(eid.to_string(), "e0");
    }

    #[test]
    fn reverse_port_on_bidirectional_ring() {
        let ring = Topology::bidirectional_ring(5).unwrap();
        for node in ring.nodes() {
            for in_port in 0..ring.in_degree(node) {
                let out_port = ring
                    .reverse_port(node, in_port)
                    .expect("bidirectional ring has all reverse edges");
                // The out edge must point back to the in edge's source.
                let in_edge = ring.edge(ring.in_edges(node)[in_port]);
                let out_edge = ring.edge(ring.out_edges(node)[out_port]);
                assert_eq!(out_edge.dst, in_edge.src);
            }
        }
    }

    #[test]
    fn reverse_port_missing_on_unidirectional_ring() {
        let ring = Topology::unidirectional_ring(4).unwrap();
        for node in ring.nodes() {
            assert_eq!(ring.reverse_port(node, 0), None);
        }
    }

    #[test]
    fn reverse_port_out_of_range_is_none() {
        let ring = Topology::bidirectional_ring(3).unwrap();
        assert_eq!(ring.reverse_port(NodeId::new(0), 99), None);
    }

    #[test]
    fn reverse_port_on_self_loop() {
        // A self-loop is its own reverse.
        let topo = Topology::unidirectional_ring(1).unwrap();
        assert_eq!(topo.reverse_port(NodeId::new(0), 0), Some(0));
    }

    #[test]
    fn symmetric_erdos_renyi_has_all_reverse_edges() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(21);
        let topo = Topology::erdos_renyi_symmetric(16, 0.3, &mut rng, 50).unwrap();
        assert!(topo.is_strongly_connected());
        for node in topo.nodes() {
            assert_eq!(topo.in_degree(node), topo.out_degree(node));
            for in_port in 0..topo.in_degree(node) {
                assert!(topo.reverse_port(node, in_port).is_some());
            }
        }
    }

    #[test]
    fn symmetric_erdos_renyi_rejects_unconnectable() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(22);
        assert_eq!(
            Topology::erdos_renyi_symmetric(10, 0.0, &mut rng, 3).unwrap_err(),
            TopologyError::NotConnected
        );
    }

    #[test]
    fn parallel_edges_allowed() {
        let topo = Topology::from_edges(2, [(0, 1), (0, 1), (1, 0)]).unwrap();
        assert_eq!(topo.out_degree(NodeId::new(0)), 2);
        assert!(topo.is_strongly_connected());
    }
}
