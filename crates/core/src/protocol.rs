//! The protocol programming model.
//!
//! A [`Protocol`] is a deterministic state machine driven by three kinds of
//! local events: start-up, local clock ticks, and message arrivals. All
//! interaction with the environment flows through a [`Ctx`] capability
//! object, which deliberately exposes **no node identity** — protocols
//! address neighbours by *port* only, so anonymity (required by the paper's
//! election algorithm) is enforced by construction. Algorithms that need
//! identities (e.g. Chang–Roberts) receive them as initial state from their
//! node factory instead.

use std::fmt;

use abe_sim::Xoshiro256PlusPlus;
use smallvec::SmallVec;

/// Position of an incoming edge in a node's in-edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InPort(pub usize);

impl fmt::Display for InPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in:{}", self.0)
    }
}

/// Position of an outgoing edge in a node's out-edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutPort(pub usize);

impl fmt::Display for OutPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out:{}", self.0)
    }
}

/// A node's algorithm: state plus handlers for start, tick, and message
/// events.
///
/// Handlers run to completion ("expected processing time γ" is modelled by
/// the network runtime as an extra delay on message delivery, not by
/// interleaving handler execution).
///
/// # Examples
///
/// A one-shot forwarder that passes every message to out-port 0:
///
/// ```
/// use abe_core::{Ctx, InPort, OutPort, Protocol};
///
/// #[derive(Debug)]
/// struct Forwarder;
///
/// impl Protocol for Forwarder {
///     type Message = u32;
///     fn on_message(&mut self, _from: InPort, msg: u32, ctx: &mut Ctx<'_, u32>) {
///         ctx.send(OutPort(0), msg + 1);
///     }
/// }
/// ```
pub trait Protocol {
    /// The message type exchanged by this protocol.
    type Message: Clone + fmt::Debug;

    /// Called once at simulation start (time zero).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called at every local clock tick while [`wants_tick`](Self::wants_tick)
    /// returns `true`.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called when a message arrives on `from` (after channel delay and
    /// processing delay).
    fn on_message(&mut self, from: InPort, msg: Self::Message, ctx: &mut Ctx<'_, Self::Message>);

    /// Whether this node currently needs local clock ticks.
    ///
    /// The runtime schedules the next tick only while this returns `true`,
    /// so simulations of protocols that eventually go tick-less (e.g. the
    /// election algorithm once no node is idle) can reach quiescence.
    fn wants_tick(&self) -> bool {
        false
    }

    /// How many tick intervals ahead the next [`on_tick`](Self::on_tick)
    /// should fire. Defaults to 1 (a tick every interval).
    ///
    /// Protocols that flip a coin with a *fixed* probability `p` at every
    /// tick can instead return a geometric sample (the index of the first
    /// success) and treat the eventual `on_tick` as the success — one
    /// simulation event replaces `1/p` of them, without changing the
    /// process distribution. Only valid while the per-tick behaviour does
    /// not change between ticks; the runtime re-queries the stride whenever
    /// the node handles any event.
    ///
    /// The runtime clamps the result to at least 1.
    fn tick_stride(&mut self, rng: &mut Xoshiro256PlusPlus) -> u64 {
        let _ = rng;
        1
    }

    /// A coarse non-negative "heat" of this node's current state, exposed
    /// read-only to scheduling adversaries through
    /// [`SendView::heat`](crate::SendView::heat). Zero (the default) means
    /// cold: nothing an adversary gains by targeting this node. Protocols
    /// with a natural critical locus — the token-holder of an election,
    /// the frontier of a wave — report it here so *adaptive* adversaries
    /// can probe the model without access to any other protocol state.
    fn heat(&self) -> u32 {
        0
    }
}

/// Samples the 1-based index of the first success in independent
/// Bernoulli(`p`) trials (a geometric random variable).
///
/// Intended for [`Protocol::tick_stride`] implementations. `p ≥ 1` returns
/// 1; `p ≤ 0` saturates to a large bound (2^40) rather than diverging.
///
/// # Examples
///
/// ```
/// use abe_core::geometric_trials;
/// use abe_sim::Xoshiro256PlusPlus;
/// use rand::SeedableRng;
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let k = geometric_trials(&mut rng, 0.25);
/// assert!(k >= 1);
/// ```
pub fn geometric_trials(rng: &mut Xoshiro256PlusPlus, p: f64) -> u64 {
    const MAX: u64 = 1 << 40;
    if p >= 1.0 {
        return 1;
    }
    if p <= 0.0 {
        return MAX;
    }
    let u = rng.uniform_f64();
    let k = 1.0 + ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if k.is_finite() && k >= 1.0 {
        (k as u64).min(MAX)
    } else {
        1
    }
}

/// Inline capacity of the per-dispatch effect buffers. Handlers that send
/// (or count) at most this many times per event — all the algorithms in
/// this workspace — never touch the allocator on the dispatch hot path.
pub(crate) const INLINE_EFFECTS: usize = 4;

/// Inline send buffer: `(port, message, declared bytes)` triples in send
/// order. The per-send byte count feeds both the aggregate
/// `payload_bytes` and the wire `size` stamped on trace records.
pub(crate) type Outbox<M> = SmallVec<[(OutPort, M, u64); INLINE_EFFECTS]>;

/// Inline counter buffer: `(name, amount)` increments in call order.
pub(crate) type CounterBumps = SmallVec<[(&'static str, u64); INLINE_EFFECTS]>;

/// Inline mark buffer: observability marks in call order.
pub(crate) type Marks = SmallVec<[Mark; 2]>;

/// Internal tuple form of the collected effects:
/// `(outbox, counters, marks, payload bytes, stop)`.
pub(crate) type RawEffects<M> = (Outbox<M>, CounterBumps, Marks, u64, bool);

/// An observability mark a handler declared via [`Ctx::note_state`] or
/// [`Ctx::decide`].
///
/// Marks are trace-only: they never influence scheduling, RNG streams,
/// counters, or the final report. With recording disabled they are
/// discarded unread, so instrumented protocols behave bit-identically
/// whether or not anyone is watching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// The node entered the named protocol state.
    State(&'static str),
    /// The node irrevocably decided a value.
    Decide(u64),
}

/// Effects collected by a [`Ctx`] during one handler dispatch.
///
/// Returned by [`Ctx::finish`]; consumed by the runtime executing the
/// protocol (the built-in simulator or an external live runtime).
#[derive(Debug)]
pub struct CtxEffects<M> {
    /// Messages to transmit, in send order.
    pub sends: Vec<(OutPort, M)>,
    /// Counter increments to aggregate.
    pub counters: Vec<(&'static str, u64)>,
    /// Observability marks, in call order (trace-only; see [`Mark`]).
    pub marks: Vec<Mark>,
    /// Total declared payload bytes of this dispatch's sends (see
    /// [`Ctx::send_sized`]).
    pub payload_bytes: u64,
    /// Whether the handler requested a global stop.
    pub stop: bool,
}

/// Capability object handed to [`Protocol`] handlers.
///
/// Collects the handler's effects (sends, counter bumps, stop requests) for
/// the runtime to apply after the handler returns.
pub struct Ctx<'a, M> {
    local_time: f64,
    network_size: u32,
    out_degree: usize,
    in_degree: usize,
    /// Per-in-port reverse out-port, if the reverse edge exists.
    reply_ports: &'a [Option<usize>],
    rng: &'a mut Xoshiro256PlusPlus,
    outbox: Outbox<M>,
    counters: CounterBumps,
    marks: Marks,
    payload_bytes: u64,
    stop: bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Creates a context; called by the network runtime per dispatch.
    pub(crate) fn new(
        local_time: f64,
        network_size: u32,
        out_degree: usize,
        in_degree: usize,
        reply_ports: &'a [Option<usize>],
        rng: &'a mut Xoshiro256PlusPlus,
    ) -> Self {
        Self {
            local_time,
            network_size,
            out_degree,
            in_degree,
            reply_ports,
            rng,
            outbox: SmallVec::new(),
            counters: SmallVec::new(),
            marks: SmallVec::new(),
            payload_bytes: 0,
            stop: false,
        }
    }

    /// Sends `msg` on the outgoing edge at `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not below [`out_degree`](Self::out_degree); a
    /// protocol addressing a port it does not have is a programming error.
    #[track_caller]
    pub fn send(&mut self, port: OutPort, msg: M) {
        assert!(
            port.0 < self.out_degree,
            "send on {port} but node has out-degree {}",
            self.out_degree
        );
        self.outbox.push((port, msg, 0));
    }

    /// Sends `msg` on the outgoing edge at `port`, declaring its wire size.
    ///
    /// Control-plane tokens have no meaningful size and use
    /// [`send`](Self::send) (0 bytes). Data-plane protocols — where message
    /// *size* is part of the measurement — declare their serialized payload
    /// size here; the runtime aggregates the total into
    /// [`NetworkReport::payload_bytes`](crate::NetworkReport). Bytes are
    /// accounted at send time (like `messages_sent`), so totals are
    /// identical at any `--shards` setting and unaffected by later drops.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not below [`out_degree`](Self::out_degree).
    #[track_caller]
    pub fn send_sized(&mut self, port: OutPort, msg: M, bytes: u64) {
        assert!(
            port.0 < self.out_degree,
            "send on {port} but node has out-degree {}",
            self.out_degree
        );
        self.outbox.push((port, msg, bytes));
        self.payload_bytes += bytes;
    }

    /// The node's local clock reading (local seconds).
    ///
    /// Local clocks advance within the `[s_low, s_high]` rate bounds of
    /// Definition 1; two nodes' local times are not comparable.
    pub fn local_time(&self) -> f64 {
        self.local_time
    }

    /// Total number of nodes `n`.
    ///
    /// The paper's election algorithm assumes known ring size; protocols
    /// for unknown-size networks simply ignore this.
    pub fn network_size(&self) -> u32 {
        self.network_size
    }

    /// Number of outgoing ports of this node.
    pub fn out_degree(&self) -> usize {
        self.out_degree
    }

    /// Number of incoming ports of this node.
    pub fn in_degree(&self) -> usize {
        self.in_degree
    }

    /// The out-port pointing back along the in-edge at `from`, if the
    /// reverse edge exists.
    ///
    /// The "bidirectional channel" convention of wave algorithms: a node
    /// can answer whoever it heard from without learning identities.
    /// Returns `None` on asymmetric edges (e.g. unidirectional rings).
    pub fn reply_port(&self, from: InPort) -> Option<OutPort> {
        self.reply_ports.get(from.0).copied().flatten().map(OutPort)
    }

    /// This node's private random stream.
    pub fn rng(&mut self) -> &mut Xoshiro256PlusPlus {
        self.rng
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    pub fn coin(&mut self, p: f64) -> bool {
        self.rng.uniform_f64() < p
    }

    /// Requests the whole network simulation to stop after this handler.
    ///
    /// Used by termination conditions that are *global* observations (e.g.
    /// "a leader was elected") rather than part of the algorithm itself.
    pub fn stop_network(&mut self) {
        self.stop = true;
    }

    /// Adds `amount` to the named experiment counter.
    ///
    /// Counters are aggregated network-wide into the final report; use
    /// stable static names like `"knockout"` or `"purged"`.
    pub fn count(&mut self, counter: &'static str, amount: u64) {
        self.counters.push((counter, amount));
    }

    /// Declares that this node just entered protocol state `state`.
    ///
    /// Trace-only (see [`Mark`]): with recording off the mark is
    /// discarded; it never affects scheduling, RNG draws, counters, or
    /// the report. Use stable static names like `"leader"` or
    /// `"decided"`.
    pub fn note_state(&mut self, state: &'static str) {
        self.marks.push(Mark::State(state));
    }

    /// Declares that this node irrevocably decided `value`. Trace-only,
    /// like [`note_state`](Self::note_state).
    pub fn decide(&mut self, value: u64) {
        self.marks.push(Mark::Decide(value));
    }

    /// Consumes the context, returning collected effects
    /// `(outbox, counters, marks, payload bytes, stop)`.
    pub(crate) fn into_effects(self) -> RawEffects<M> {
        (
            self.outbox,
            self.counters,
            self.marks,
            self.payload_bytes,
            self.stop,
        )
    }

    /// Creates a context for an **external runtime** (one not built on the
    /// discrete-event simulator, e.g. a thread-per-node live executor).
    ///
    /// The built-in [`Network`](crate::Network) constructs contexts
    /// internally; this constructor exists so the same [`Protocol`] values
    /// can be driven by other executors.
    pub fn external(
        local_time: f64,
        network_size: u32,
        out_degree: usize,
        in_degree: usize,
        reply_ports: &'a [Option<usize>],
        rng: &'a mut Xoshiro256PlusPlus,
    ) -> Self {
        Self::new(
            local_time,
            network_size,
            out_degree,
            in_degree,
            reply_ports,
            rng,
        )
    }

    /// Consumes the context, returning the collected [`CtxEffects`].
    ///
    /// The counterpart of [`Ctx::external`] for external runtimes. Unlike
    /// the internal simulator path (which drains the inline buffers
    /// directly), this converts to plain `Vec`s for API stability.
    pub fn finish(self) -> CtxEffects<M> {
        CtxEffects {
            sends: self
                .outbox
                .into_iter()
                .map(|(port, msg, _bytes)| (port, msg))
                .collect(),
            counters: self.counters.into_vec(),
            marks: self.marks.into_vec(),
            payload_bytes: self.payload_bytes,
            stop: self.stop,
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("local_time", &self.local_time)
            .field("network_size", &self.network_size)
            .field("out_degree", &self.out_degree)
            .field("in_degree", &self.in_degree)
            .field("outbox", &self.outbox)
            .field("stop", &self.stop)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(1)
    }

    #[test]
    fn ctx_collects_sends_in_order() {
        let mut r = rng();
        let mut ctx: Ctx<'_, u32> = Ctx::new(0.0, 4, 2, 1, &[], &mut r);
        ctx.send(OutPort(0), 10);
        ctx.send(OutPort(1), 20);
        let (outbox, _, _, bytes, _) = ctx.into_effects();
        assert!(!outbox.spilled(), "small outboxes must stay inline");
        assert_eq!(
            outbox.into_vec(),
            vec![(OutPort(0), 10, 0), (OutPort(1), 20, 0)]
        );
        assert_eq!(bytes, 0, "plain sends declare no payload size");
    }

    #[test]
    fn sized_sends_accumulate_payload_bytes() {
        let mut r = rng();
        let mut ctx: Ctx<'_, u32> = Ctx::new(0.0, 4, 2, 1, &[], &mut r);
        ctx.send_sized(OutPort(0), 10, 16);
        ctx.send(OutPort(1), 20);
        ctx.send_sized(OutPort(1), 30, 24);
        let (outbox, _, _, bytes, _) = ctx.into_effects();
        let outbox = outbox.into_vec();
        assert_eq!(outbox.len(), 3, "sized sends still enqueue messages");
        assert_eq!(
            outbox[0],
            (OutPort(0), 10, 16),
            "each send remembers its own declared size"
        );
        assert_eq!(bytes, 40);
    }

    #[test]
    fn finish_exposes_payload_bytes() {
        let mut r = rng();
        let mut ctx: Ctx<'_, u32> = Ctx::external(0.0, 2, 1, 1, &[], &mut r);
        ctx.send_sized(OutPort(0), 1, 8);
        let effects = ctx.finish();
        assert_eq!(effects.sends, vec![(OutPort(0), 1)]);
        assert_eq!(effects.payload_bytes, 8);
    }

    #[test]
    #[should_panic(expected = "out-degree")]
    fn send_on_missing_port_panics() {
        let mut r = rng();
        let mut ctx: Ctx<'_, u32> = Ctx::new(0.0, 4, 1, 1, &[], &mut r);
        ctx.send(OutPort(1), 0);
    }

    #[test]
    fn ctx_exposes_environment() {
        let mut r = rng();
        let ctx: Ctx<'_, ()> = Ctx::new(2.5, 7, 3, 2, &[], &mut r);
        assert_eq!(ctx.local_time(), 2.5);
        assert_eq!(ctx.network_size(), 7);
        assert_eq!(ctx.out_degree(), 3);
        assert_eq!(ctx.in_degree(), 2);
    }

    #[test]
    fn stop_and_counters_are_reported() {
        let mut r = rng();
        let mut ctx: Ctx<'_, ()> = Ctx::new(0.0, 1, 0, 0, &[], &mut r);
        ctx.count("knockout", 2);
        ctx.count("knockout", 1);
        ctx.stop_network();
        let (_, counters, _, _, stop) = ctx.into_effects();
        assert_eq!(counters.into_vec(), vec![("knockout", 2), ("knockout", 1)]);
        assert!(stop);
    }

    #[test]
    fn marks_are_collected_in_call_order() {
        let mut r = rng();
        let mut ctx: Ctx<'_, ()> = Ctx::new(0.0, 1, 0, 0, &[], &mut r);
        ctx.note_state("passive");
        ctx.decide(3);
        ctx.note_state("decided");
        let (_, _, marks, _, _) = ctx.into_effects();
        assert_eq!(
            marks.into_vec(),
            vec![
                Mark::State("passive"),
                Mark::Decide(3),
                Mark::State("decided"),
            ]
        );
    }

    #[test]
    fn finish_exposes_marks_without_sizes() {
        let mut r = rng();
        let mut ctx: Ctx<'_, u32> = Ctx::external(0.0, 2, 1, 1, &[], &mut r);
        ctx.send_sized(OutPort(0), 1, 8);
        ctx.decide(1);
        let effects = ctx.finish();
        assert_eq!(effects.sends, vec![(OutPort(0), 1)]);
        assert_eq!(effects.marks, vec![Mark::Decide(1)]);
    }

    #[test]
    fn coin_respects_probability_extremes() {
        let mut r = rng();
        let mut ctx: Ctx<'_, ()> = Ctx::new(0.0, 1, 0, 0, &[], &mut r);
        assert!(!ctx.coin(0.0));
        assert!(ctx.coin(1.1)); // clamped above 1 ⇒ always true
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut r = rng();
        let mut ctx: Ctx<'_, ()> = Ctx::new(0.0, 1, 0, 0, &[], &mut r);
        let heads = (0..10_000).filter(|_| ctx.coin(0.5)).count();
        assert!((4500..5500).contains(&heads), "got {heads}");
    }

    #[test]
    fn port_display() {
        assert_eq!(InPort(2).to_string(), "in:2");
        assert_eq!(OutPort(0).to_string(), "out:0");
    }
}

#[cfg(test)]
mod geometric_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn geometric_mean_is_one_over_p() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        for &p in &[0.01f64, 0.1, 0.5, 0.9] {
            let n = 100_000u64;
            let mean: f64 = (0..n)
                .map(|_| geometric_trials(&mut rng, p) as f64)
                .sum::<f64>()
                / n as f64;
            let expect = 1.0 / p;
            assert!(
                (mean - expect).abs() / expect < 0.03,
                "p={p}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn geometric_edge_cases() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        assert_eq!(geometric_trials(&mut rng, 1.0), 1);
        assert_eq!(geometric_trials(&mut rng, 2.0), 1);
        assert_eq!(geometric_trials(&mut rng, 0.0), 1 << 40);
        assert_eq!(geometric_trials(&mut rng, -0.5), 1 << 40);
        // Tiny p saturates rather than overflowing.
        assert!(geometric_trials(&mut rng, 1e-18) <= 1 << 40);
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        for _ in 0..10_000 {
            assert!(geometric_trials(&mut rng, 0.7) >= 1);
        }
    }
}
