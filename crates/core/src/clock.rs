//! Local clocks with bounded drift.
//!
//! Definition 1.2 of the paper: for every node `A` the local clock `C_A`
//! satisfies `s_low · (t2 - t1) ≤ |C_A(t2) - C_A(t1)| ≤ s_high · (t2 - t1)`
//! for known bounds `0 < s_low ≤ s_high`. Nodes act on **local** clock
//! ticks (the election algorithm flips its activation coin once per tick),
//! so the rate at which a node takes steps in real time varies per node and
//! — under [`DriftMode::Wander`] — over time, while always respecting the
//! bounds.

use abe_sim::{SimDuration, SimTime, Xoshiro256PlusPlus};

use crate::error::InvalidParamError;

/// How a node's clock rate evolves over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriftMode {
    /// Each node draws one rate in `[s_low, s_high]` at start-up and keeps
    /// it forever (constant skew).
    #[default]
    Fixed,
    /// The rate is re-drawn from `[s_low, s_high]` at every tick (bounded
    /// wander); models temperature-dependent oscillators.
    Wander,
}

/// Specification of the clock population: rate bounds plus drift behaviour.
///
/// # Examples
///
/// ```
/// use abe_core::clock::{ClockSpec, DriftMode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let perfect = ClockSpec::perfect();
/// assert_eq!(perfect.s_low(), 1.0);
///
/// let drifty = ClockSpec::new(0.5, 2.0, DriftMode::Wander)?;
/// assert_eq!(drifty.ratio(), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSpec {
    s_low: f64,
    s_high: f64,
    drift: DriftMode,
}

impl ClockSpec {
    /// Creates a clock specification with rates in `[s_low, s_high]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < s_low ≤ s_high` and both are finite.
    pub fn new(s_low: f64, s_high: f64, drift: DriftMode) -> Result<Self, InvalidParamError> {
        if !(s_low.is_finite() && s_low > 0.0) {
            return Err(InvalidParamError::new(
                "s_low",
                "must be finite and positive",
                s_low,
            ));
        }
        if !(s_high.is_finite() && s_high >= s_low) {
            return Err(InvalidParamError::new(
                "s_high",
                "must be finite and >= s_low",
                s_high,
            ));
        }
        Ok(Self {
            s_low,
            s_high,
            drift,
        })
    }

    /// All clocks run at exactly rate 1 (no skew, no drift).
    pub fn perfect() -> Self {
        Self {
            s_low: 1.0,
            s_high: 1.0,
            drift: DriftMode::Fixed,
        }
    }

    /// The slowest admissible rate.
    pub fn s_low(&self) -> f64 {
        self.s_low
    }

    /// The fastest admissible rate.
    pub fn s_high(&self) -> f64 {
        self.s_high
    }

    /// The drift behaviour.
    pub fn drift(&self) -> DriftMode {
        self.drift
    }

    /// `s_high / s_low`, the worst-case relative speed between two nodes.
    pub fn ratio(&self) -> f64 {
        self.s_high / self.s_low
    }

    /// Draws a rate uniformly from `[s_low, s_high]`.
    fn draw_rate(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        if self.s_low == self.s_high {
            self.s_low
        } else {
            self.s_low + rng.uniform_f64() * (self.s_high - self.s_low)
        }
    }

    /// Instantiates one node's clock, drawing its initial rate from `rng`.
    pub fn instantiate(&self, rng: &mut Xoshiro256PlusPlus) -> LocalClock {
        let rate = self.draw_rate(rng);
        LocalClock {
            spec: *self,
            rate,
            local: 0.0,
            last_real: SimTime::ZERO,
        }
    }
}

/// One node's local clock: maps real time to local time at a bounded rate.
///
/// The mapping is piecewise linear: within a segment the rate is constant;
/// [`DriftMode::Wander`] re-draws the rate at tick boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalClock {
    spec: ClockSpec,
    rate: f64,
    local: f64,
    last_real: SimTime,
}

impl LocalClock {
    /// The current rate (local seconds per real second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Advances the clock to real time `now`, returning the local time.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last observed real time (clocks never
    /// run backwards).
    pub fn advance_to(&mut self, now: SimTime) -> f64 {
        let elapsed = now.duration_since(self.last_real);
        self.local += elapsed.as_secs() * self.rate;
        self.last_real = now;
        self.local
    }

    /// The local time at the last [`advance_to`](Self::advance_to) call.
    pub fn local_time(&self) -> f64 {
        self.local
    }

    /// Real-time duration of the next local interval of length
    /// `local_interval`, re-drawing the rate first under
    /// [`DriftMode::Wander`].
    ///
    /// # Panics
    ///
    /// Panics if `local_interval` is not finite and positive.
    pub fn real_interval(
        &mut self,
        local_interval: f64,
        rng: &mut Xoshiro256PlusPlus,
    ) -> SimDuration {
        assert!(
            local_interval.is_finite() && local_interval > 0.0,
            "local_interval must be finite and positive, got {local_interval}"
        );
        if self.spec.drift == DriftMode::Wander {
            self.rate = self.spec.draw_rate(rng);
        }
        SimDuration::from_secs(local_interval / self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abe_sim::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn perfect_clock_tracks_real_time() {
        let mut clock = ClockSpec::perfect().instantiate(&mut rng(1));
        assert_eq!(clock.rate(), 1.0);
        assert_eq!(clock.advance_to(t(5.0)), 5.0);
        assert_eq!(clock.advance_to(t(7.5)), 7.5);
    }

    #[test]
    fn spec_validation() {
        assert!(ClockSpec::new(0.0, 1.0, DriftMode::Fixed).is_err());
        assert!(ClockSpec::new(-1.0, 1.0, DriftMode::Fixed).is_err());
        assert!(ClockSpec::new(2.0, 1.0, DriftMode::Fixed).is_err());
        assert!(ClockSpec::new(1.0, f64::NAN, DriftMode::Fixed).is_err());
        assert!(ClockSpec::new(0.5, 0.5, DriftMode::Wander).is_ok());
    }

    #[test]
    fn ratio_reports_relative_speed() {
        let spec = ClockSpec::new(0.5, 2.0, DriftMode::Fixed).unwrap();
        assert_eq!(spec.ratio(), 4.0);
    }

    #[test]
    fn rates_respect_bounds() {
        let spec = ClockSpec::new(0.5, 2.0, DriftMode::Fixed).unwrap();
        let mut r = rng(2);
        for _ in 0..1000 {
            let clock = spec.instantiate(&mut r);
            assert!((0.5..=2.0).contains(&clock.rate()));
        }
    }

    #[test]
    fn rates_are_spread_across_the_range() {
        let spec = ClockSpec::new(1.0, 2.0, DriftMode::Fixed).unwrap();
        let mut r = rng(3);
        let rates: Vec<f64> = (0..1000).map(|_| spec.instantiate(&mut r).rate()).collect();
        let below = rates.iter().filter(|&&x| x < 1.5).count();
        assert!((300..700).contains(&below), "rates not spread: {below}");
    }

    #[test]
    fn local_time_advances_at_rate() {
        let spec = ClockSpec::new(2.0, 2.0, DriftMode::Fixed).unwrap();
        let mut clock = spec.instantiate(&mut rng(4));
        assert_eq!(clock.advance_to(t(3.0)), 6.0);
        assert_eq!(clock.local_time(), 6.0);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn clock_panics_on_time_reversal() {
        let mut clock = ClockSpec::perfect().instantiate(&mut rng(5));
        clock.advance_to(t(5.0));
        clock.advance_to(t(4.0));
    }

    #[test]
    fn real_interval_inverts_rate() {
        let spec = ClockSpec::new(2.0, 2.0, DriftMode::Fixed).unwrap();
        let mut clock = spec.instantiate(&mut rng(6));
        let mut r = rng(7);
        // Rate 2 local/real: one local unit takes 0.5 real seconds.
        assert_eq!(clock.real_interval(1.0, &mut r).as_secs(), 0.5);
    }

    #[test]
    fn wander_redraws_rate_within_bounds() {
        let spec = ClockSpec::new(0.5, 2.0, DriftMode::Wander).unwrap();
        let mut clock = spec.instantiate(&mut rng(8));
        let mut r = rng(9);
        let mut rates = std::collections::HashSet::new();
        for _ in 0..100 {
            let d = clock.real_interval(1.0, &mut r);
            assert!((0.5..=2.0).contains(&clock.rate()));
            // interval = 1/rate ∈ [0.5, 2.0]
            assert!((0.5..=2.0).contains(&d.as_secs()));
            rates.insert(clock.rate().to_bits());
        }
        assert!(rates.len() > 50, "wander should visit many rates");
    }

    #[test]
    fn fixed_mode_keeps_rate() {
        let spec = ClockSpec::new(0.5, 2.0, DriftMode::Fixed).unwrap();
        let mut clock = spec.instantiate(&mut rng(10));
        let initial = clock.rate();
        let mut r = rng(11);
        for _ in 0..10 {
            clock.real_interval(1.0, &mut r);
            assert_eq!(clock.rate(), initial);
        }
    }

    #[test]
    fn drift_bounds_definition_holds() {
        // Definition 1.2: s_low·(t2-t1) ≤ C(t2)-C(t1) ≤ s_high·(t2-t1),
        // checked over many random advance patterns.
        let spec = ClockSpec::new(0.25, 4.0, DriftMode::Wander).unwrap();
        let mut r = rng(12);
        for trial in 0..100 {
            let mut clock = spec.instantiate(&mut r);
            let mut real = SimTime::ZERO;
            let mut prev_local = 0.0;
            let mut step_rng = rng(trial);
            for _ in 0..20 {
                let dt = 0.1 + step_rng.uniform_f64();
                real += SimDuration::from_secs(dt);
                let local = clock.advance_to(real);
                let dl = local - prev_local;
                assert!(dl >= 0.25 * dt - 1e-9 && dl <= 4.0 * dt + 1e-9);
                prev_local = local;
                // Occasionally re-draw the rate (as ticks would).
                clock.real_interval(1.0, &mut step_rng);
            }
        }
    }

    #[test]
    #[should_panic(expected = "local_interval")]
    fn real_interval_rejects_non_positive() {
        let mut clock = ClockSpec::perfect().instantiate(&mut rng(13));
        let mut r = rng(14);
        clock.real_interval(0.0, &mut r);
    }
}
