//! Message-delay models with a known expected value.
//!
//! Definition 1 of the paper only requires a **bound on the expected
//! delay** to be known; the delay itself may be unbounded. This module
//! provides the distribution families used throughout the evaluation:
//!
//! * bounded support (ABD-compatible): [`Deterministic`], [`Uniform`],
//!   [`Bimodal`];
//! * unbounded support with finite mean (strictly ABE): [`Exponential`],
//!   [`Erlang`], [`Pareto`], [`LogNormal`], [`Hyperexponential`], and
//!   [`Retransmission`] — the paper's §1 case (iii) lossy-channel model
//!   whose mean is exactly `slot / p`.
//!
//! Every model reports its exact analytic [`mean`](DelayModel::mean) and the
//! supremum of its support via [`upper_bound`](DelayModel::upper_bound)
//! (`None` when unbounded), which is what network-class validation checks.

use std::fmt;
use std::sync::Arc;

use abe_sim::{SimDuration, Xoshiro256PlusPlus};

use crate::error::InvalidParamError;

/// A distribution over non-negative message delays with known mean.
///
/// Models are immutable and shareable (`Send + Sync`); all randomness flows
/// through the caller-supplied RNG, keeping simulations deterministic.
///
/// # Examples
///
/// ```
/// use abe_core::delay::{DelayModel, Exponential};
/// use abe_sim::Xoshiro256PlusPlus;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = Exponential::from_mean(2.0)?;
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let d = model.sample(&mut rng);
/// assert!(d.as_secs() >= 0.0);
/// assert_eq!(model.mean().as_secs(), 2.0);
/// assert!(model.upper_bound().is_none()); // unbounded support
/// # Ok(())
/// # }
/// ```
pub trait DelayModel: fmt::Debug + Send + Sync {
    /// Draws one delay.
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration;

    /// The exact expected value of the distribution.
    fn mean(&self) -> SimDuration;

    /// Supremum of the support, or `None` if the support is unbounded.
    ///
    /// ABD networks require `Some(bound)`; ABE networks only require a
    /// finite [`mean`](Self::mean).
    fn upper_bound(&self) -> Option<SimDuration>;

    /// Infimum of the support: a time no sample can undercut.
    ///
    /// This is the *lookahead* the sharded kernel builds its conservative
    /// time windows from — a cross-shard message sent at `t` cannot arrive
    /// before `t + min_delay()`, so shards may safely advance that far
    /// without synchronising. Models whose support reaches down to zero
    /// (the exponential family) return `0.0`, which degrades sharded
    /// execution to single-stepping; models with a genuine floor
    /// (deterministic, uniform `lo`, Pareto `scale`, …) override this.
    ///
    /// Implementations must guarantee `sample(rng) >= min_delay()` for
    /// every RNG state.
    fn min_delay(&self) -> f64 {
        0.0
    }

    /// Whether [`sample`](Self::sample) advances the RNG it is handed.
    ///
    /// Deterministic models ignore the RNG entirely and return `false`;
    /// everything else consumes draws and must return `true` (the
    /// default). The network runtime uses this to decide whether a
    /// sampling stream must be materialised per edge for shard-order
    /// independence — a model that never draws needs no stream at all.
    fn consumes_rng(&self) -> bool {
        true
    }

    /// Short human-readable family name (e.g. `"exponential"`).
    fn name(&self) -> &'static str;
}

/// Shared handle to a delay model.
pub type SharedDelay = Arc<dyn DelayModel>;

fn require(
    ok: bool,
    param: &'static str,
    constraint: &'static str,
    value: impl fmt::Display,
) -> Result<(), InvalidParamError> {
    if ok {
        Ok(())
    } else {
        Err(InvalidParamError::new(param, constraint, value))
    }
}

fn finite_non_negative(value: f64, param: &'static str) -> Result<(), InvalidParamError> {
    require(
        value.is_finite() && value >= 0.0,
        param,
        "must be finite and non-negative",
        value,
    )
}

fn finite_positive(value: f64, param: &'static str) -> Result<(), InvalidParamError> {
    require(
        value.is_finite() && value > 0.0,
        param,
        "must be finite and positive",
        value,
    )
}

/// Constant delay — the degenerate, fully synchronous-friendly model.
///
/// With `Deterministic::new(d)`, every message takes exactly `d`. This is
/// the classic ABD assumption expressed as an ABE model, and the basis of
/// the `ABD ⊂ ABE` containment tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a constant delay of `value` seconds.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is negative, NaN, or infinite.
    pub fn new(value: f64) -> Result<Self, InvalidParamError> {
        finite_non_negative(value, "value")?;
        Ok(Self { value })
    }

    /// A zero delay, useful as a processing model meaning "instantaneous".
    pub fn zero() -> Self {
        Self { value: 0.0 }
    }
}

impl DelayModel for Deterministic {
    fn sample(&self, _rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        SimDuration::from_secs(self.value)
    }

    fn min_delay(&self) -> f64 {
        self.value
    }

    fn consumes_rng(&self) -> bool {
        false
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.value)
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(self.value))
    }

    fn name(&self) -> &'static str {
        "deterministic"
    }
}

/// Uniform delay on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform delay on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 <= lo <= hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, InvalidParamError> {
        finite_non_negative(lo, "lo")?;
        finite_non_negative(hi, "hi")?;
        require(lo <= hi, "hi", "must be >= lo", hi)?;
        Ok(Self { lo, hi })
    }

    /// Uniform on `[(1-spread)·mean, (1+spread)·mean]` for `spread ∈ [0,1]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is not positive/finite or `spread` is
    /// outside `[0, 1]`.
    pub fn from_mean(mean: f64, spread: f64) -> Result<Self, InvalidParamError> {
        finite_positive(mean, "mean")?;
        require(
            (0.0..=1.0).contains(&spread),
            "spread",
            "must lie in [0, 1]",
            spread,
        )?;
        Self::new(mean * (1.0 - spread), mean * (1.0 + spread))
    }
}

impl DelayModel for Uniform {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        let u = rng.uniform_f64();
        SimDuration::from_secs(self.lo + u * (self.hi - self.lo))
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(0.5 * (self.lo + self.hi))
    }

    fn min_delay(&self) -> f64 {
        self.lo
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(self.hi))
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Exponential delay — the canonical unbounded-support, finite-mean model.
///
/// The memoryless single-parameter family; the default delay model of the
/// evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential delay with the given mean (`1/λ`).
    ///
    /// # Errors
    ///
    /// Returns an error unless `mean` is finite and positive.
    pub fn from_mean(mean: f64) -> Result<Self, InvalidParamError> {
        finite_positive(mean, "mean")?;
        Ok(Self { mean })
    }

    /// Creates an exponential delay with the given rate `λ`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `rate` is finite and positive.
    pub fn from_rate(rate: f64) -> Result<Self, InvalidParamError> {
        finite_positive(rate, "rate")?;
        Ok(Self { mean: 1.0 / rate })
    }
}

impl DelayModel for Exponential {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        // Inverse-CDF: -mean · ln(1 - U), with U ∈ [0, 1) so the argument of
        // ln stays in (0, 1].
        let u = rng.uniform_f64();
        SimDuration::from_secs(-self.mean * (1.0 - u).ln())
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.mean)
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "exponential"
    }
}

/// Erlang-`k` delay: sum of `k` independent exponentials.
///
/// Interpolates between exponential (`k = 1`) and nearly deterministic
/// (`k → ∞`) while keeping unbounded support; models multi-stage pipelines
/// such as the paper's §1 case (ii), dynamic multi-hop routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    stage_mean: f64,
}

impl Erlang {
    /// Creates an Erlang-`k` delay with overall mean `mean`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `k >= 1` and `mean` is finite and positive.
    pub fn from_mean(k: u32, mean: f64) -> Result<Self, InvalidParamError> {
        require(k >= 1, "k", "must be at least 1", k)?;
        finite_positive(mean, "mean")?;
        Ok(Self {
            k,
            stage_mean: mean / f64::from(k),
        })
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.k
    }
}

impl DelayModel for Erlang {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        let mut total = 0.0;
        for _ in 0..self.k {
            let u = rng.uniform_f64();
            total -= self.stage_mean * (1.0 - u).ln();
        }
        SimDuration::from_secs(total)
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.stage_mean * f64::from(self.k))
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "erlang"
    }
}

/// Pareto (power-law) delay — heavy-tailed with finite mean for shape > 1.
///
/// Models the paper's §1 case (i): queueing spikes under bursty load. The
/// tail is polynomial, so extreme delays are far more likely than under the
/// exponential model, yet the expected delay stays bounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    shape: f64,
    scale: f64,
}

impl Pareto {
    /// Creates a Pareto delay with tail index `shape` and minimum `scale`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `shape > 1` (finite mean) and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, InvalidParamError> {
        require(
            shape.is_finite() && shape > 1.0,
            "shape",
            "must be finite and > 1 for a finite mean",
            shape,
        )?;
        finite_positive(scale, "scale")?;
        Ok(Self { shape, scale })
    }

    /// Creates a Pareto delay with the given `shape` and overall `mean`.
    ///
    /// The scale is derived from `mean = shape·scale/(shape-1)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `shape > 1` and `mean` is finite and positive.
    pub fn from_mean(shape: f64, mean: f64) -> Result<Self, InvalidParamError> {
        finite_positive(mean, "mean")?;
        require(
            shape.is_finite() && shape > 1.0,
            "shape",
            "must be finite and > 1 for a finite mean",
            shape,
        )?;
        let scale = mean * (shape - 1.0) / shape;
        Self::new(shape, scale)
    }

    /// The tail index.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl DelayModel for Pareto {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        let u = rng.uniform_f64();
        // Inverse-CDF: scale · (1 - U)^(-1/shape).
        SimDuration::from_secs(self.scale * (1.0 - u).powf(-1.0 / self.shape))
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.shape * self.scale / (self.shape - 1.0))
    }

    fn min_delay(&self) -> f64 {
        self.scale
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "pareto"
    }
}

/// Log-normal delay: `exp(N(mu, sigma²))`.
///
/// A common empirical fit for wide-area latencies; unbounded support,
/// finite mean `exp(mu + sigma²/2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal delay from the underlying normal parameters.
    ///
    /// # Errors
    ///
    /// Returns an error unless `mu` is finite and `sigma` is finite and
    /// non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidParamError> {
        require(mu.is_finite(), "mu", "must be finite", mu)?;
        require(
            sigma.is_finite() && sigma >= 0.0,
            "sigma",
            "must be finite and non-negative",
            sigma,
        )?;
        Ok(Self { mu, sigma })
    }

    /// Creates a log-normal delay with the given `mean` and shape `sigma`.
    ///
    /// `mu` is derived from `mean = exp(mu + sigma²/2)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `mean` is finite and positive and `sigma` is
    /// finite and non-negative.
    pub fn from_mean(mean: f64, sigma: f64) -> Result<Self, InvalidParamError> {
        finite_positive(mean, "mean")?;
        require(
            sigma.is_finite() && sigma >= 0.0,
            "sigma",
            "must be finite and non-negative",
            sigma,
        )?;
        Self::new(mean.ln() - 0.5 * sigma * sigma, sigma)
    }
}

impl DelayModel for LogNormal {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        // Box–Muller transform; we consume two uniforms and use one normal,
        // keeping the stream layout simple and deterministic.
        let u1 = rng.uniform_f64();
        let u2 = rng.uniform_f64();
        let r = (-2.0 * (1.0 - u1).ln()).sqrt();
        let z = r * (2.0 * std::f64::consts::PI * u2).cos();
        SimDuration::from_secs((self.mu + self.sigma * z).exp())
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "lognormal"
    }
}

/// Mixture of exponentials — high variance with a finite mean.
///
/// Each branch `(weight, mean)` is chosen with probability proportional to
/// its weight, then an exponential with that branch's mean is drawn. Models
/// multi-path routing where a message takes one of several route classes.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperexponential {
    /// `(cumulative_weight, mean)` with weights normalised to sum 1.
    branches: Vec<(f64, f64)>,
    mean: f64,
}

impl Hyperexponential {
    /// Creates a mixture from `(weight, mean)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if no branches are given, any weight is
    /// non-positive, or any branch mean is non-positive.
    pub fn new(branches: &[(f64, f64)]) -> Result<Self, InvalidParamError> {
        require(
            !branches.is_empty(),
            "branches",
            "must contain at least one branch",
            branches.len(),
        )?;
        let mut total_weight = 0.0;
        for &(w, m) in branches {
            require(
                w.is_finite() && w > 0.0,
                "weight",
                "must be finite and positive",
                w,
            )?;
            finite_positive(m, "branch mean")?;
            total_weight += w;
        }
        let mut cumulative = 0.0;
        let mut normalised = Vec::with_capacity(branches.len());
        let mut mean = 0.0;
        for &(w, m) in branches {
            let p = w / total_weight;
            cumulative += p;
            normalised.push((cumulative, m));
            mean += p * m;
        }
        // Guard against floating-point undershoot in the final cumulative.
        if let Some(last) = normalised.last_mut() {
            last.0 = 1.0;
        }
        Ok(Self {
            branches: normalised,
            mean,
        })
    }
}

impl DelayModel for Hyperexponential {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        let pick = rng.uniform_f64();
        let branch_mean = self
            .branches
            .iter()
            .find(|(cum, _)| pick < *cum)
            .map(|(_, m)| *m)
            .unwrap_or_else(|| self.branches[self.branches.len() - 1].1);
        let u = rng.uniform_f64();
        SimDuration::from_secs(-branch_mean * (1.0 - u).ln())
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.mean)
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "hyperexponential"
    }
}

/// Two-point delay: `fast` with probability `1 - slow_prob`, else `slow`.
///
/// The simplest "mostly fine, occasionally congested" model; bounded
/// support, so it is also ABD-compatible with bound `slow`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bimodal {
    fast: f64,
    slow: f64,
    slow_prob: f64,
}

impl Bimodal {
    /// Creates a two-point delay.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 <= fast <= slow` (finite) and
    /// `slow_prob ∈ [0, 1]`.
    pub fn new(fast: f64, slow: f64, slow_prob: f64) -> Result<Self, InvalidParamError> {
        finite_non_negative(fast, "fast")?;
        finite_non_negative(slow, "slow")?;
        require(fast <= slow, "slow", "must be >= fast", slow)?;
        require(
            (0.0..=1.0).contains(&slow_prob),
            "slow_prob",
            "must lie in [0, 1]",
            slow_prob,
        )?;
        Ok(Self {
            fast,
            slow,
            slow_prob,
        })
    }
}

impl DelayModel for Bimodal {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        let v = if rng.uniform_f64() < self.slow_prob {
            self.slow
        } else {
            self.fast
        };
        SimDuration::from_secs(v)
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.fast + (self.slow - self.fast) * self.slow_prob)
    }

    fn min_delay(&self) -> f64 {
        if self.slow_prob >= 1.0 {
            self.slow
        } else {
            self.fast
        }
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(if self.slow_prob > 0.0 {
            self.slow
        } else {
            self.fast
        }))
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// The gamma function Γ(x) for positive arguments (Lanczos approximation,
/// g = 7, 9 coefficients; relative error below 1e-13 over the range the
/// delay models use). Only what [`Weibull`]'s analytic mean needs — not a
/// general special-functions library.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps small shapes' 1 + 1/k arguments exact.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut acc = C[0];
        for (i, &c) in C.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
    }
}

/// Weibull delay: `scale · (−ln(1−U))^(1/shape)`.
///
/// The standard reliability-engineering latency family: `shape < 1` gives
/// a heavy-tailed, bursty channel (decreasing hazard rate), `shape = 1`
/// *is* the exponential, `shape > 1` concentrates around the mean.
/// Unbounded support for every shape, with analytic mean
/// `scale · Γ(1 + 1/shape)` — so the family is strictly ABE and slots
/// directly under a Definition-1 expected-delay bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull delay with the given `shape` (k) and `scale` (λ).
    ///
    /// # Errors
    ///
    /// Returns an error unless both are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, InvalidParamError> {
        finite_positive(shape, "shape")?;
        finite_positive(scale, "scale")?;
        Ok(Self { shape, scale })
    }

    /// Creates a Weibull delay with the given `shape` and overall `mean`.
    ///
    /// The scale is derived from `mean = scale · Γ(1 + 1/shape)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `shape` and `mean` are finite and positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use abe_core::delay::{DelayModel, Weibull};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let bursty = Weibull::from_mean(0.5, 2.0)?;
    /// assert!((bursty.mean().as_secs() - 2.0).abs() < 1e-9);
    /// assert!(bursty.upper_bound().is_none()); // unbounded support
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_mean(shape: f64, mean: f64) -> Result<Self, InvalidParamError> {
        finite_positive(shape, "shape")?;
        finite_positive(mean, "mean")?;
        Self::new(shape, mean / gamma(1.0 + 1.0 / shape))
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl DelayModel for Weibull {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        // Inverse-CDF: λ · (−ln(1−U))^(1/k), with U ∈ [0, 1).
        let u = rng.uniform_f64();
        SimDuration::from_secs(self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape))
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.scale * gamma(1.0 + 1.0 / self.shape))
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "weibull"
    }
}

/// The paper's §1 case (iii): retransmission over a lossy physical channel.
///
/// Each transmission attempt takes one `slot` and succeeds independently
/// with probability `p`. The number of attempts is geometric, hence
/// **unbounded**, but the expected attempt count is `1/p` and the expected
/// delay `slot/p` — the motivating example for the ABE model.
///
/// # Examples
///
/// ```
/// use abe_core::delay::{DelayModel, Retransmission};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let channel = Retransmission::new(0.25, 1.0)?;
/// assert_eq!(channel.mean().as_secs(), 4.0); // slot/p = 1/0.25
/// assert!(channel.upper_bound().is_none()); // k retransmissions w.p. (1-p)^k
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retransmission {
    success_prob: f64,
    slot: f64,
}

impl Retransmission {
    /// Creates a lossy-channel delay with per-attempt success probability
    /// `success_prob` and per-attempt duration `slot` seconds.
    ///
    /// # Errors
    ///
    /// Returns an error unless `success_prob ∈ (0, 1]` and `slot > 0`.
    pub fn new(success_prob: f64, slot: f64) -> Result<Self, InvalidParamError> {
        require(
            success_prob.is_finite() && success_prob > 0.0 && success_prob <= 1.0,
            "success_prob",
            "must lie in (0, 1]",
            success_prob,
        )?;
        finite_positive(slot, "slot")?;
        Ok(Self { success_prob, slot })
    }

    /// Per-attempt success probability `p`.
    pub fn success_prob(&self) -> f64 {
        self.success_prob
    }

    /// Draws the number of transmission attempts (≥ 1) for one message.
    pub fn sample_attempts(&self, rng: &mut Xoshiro256PlusPlus) -> u64 {
        if self.success_prob >= 1.0 {
            return 1;
        }
        // Inverse-CDF of the geometric distribution (number of Bernoulli(p)
        // trials up to and including the first success):
        // k = 1 + floor(ln(1-U) / ln(1-p)).
        let u = rng.uniform_f64();
        let k = 1.0 + ((1.0 - u).ln() / (1.0 - self.success_prob).ln()).floor();
        // Clamp pathological floating-point outcomes; k is ≥ 1 by design.
        k.max(1.0) as u64
    }
}

impl DelayModel for Retransmission {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        let attempts = self.sample_attempts(rng);
        SimDuration::from_secs(attempts as f64 * self.slot)
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.slot / self.success_prob)
    }

    fn min_delay(&self) -> f64 {
        self.slot
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        if self.success_prob >= 1.0 {
            Some(SimDuration::from_secs(self.slot))
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "retransmission"
    }
}

/// Adds a constant propagation offset to an inner model.
///
/// `Shifted::new(offset, inner)` models "wire time plus queueing time".
#[derive(Debug, Clone)]
pub struct Shifted<D> {
    offset: f64,
    inner: D,
}

impl<D: DelayModel> Shifted<D> {
    /// Wraps `inner`, adding `offset` seconds to every sample.
    ///
    /// # Errors
    ///
    /// Returns an error unless `offset` is finite and non-negative.
    pub fn new(offset: f64, inner: D) -> Result<Self, InvalidParamError> {
        finite_non_negative(offset, "offset")?;
        Ok(Self { offset, inner })
    }

    /// The wrapped model.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: DelayModel> DelayModel for Shifted<D> {
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> SimDuration {
        self.inner.sample(rng) + SimDuration::from_secs(self.offset)
    }

    fn mean(&self) -> SimDuration {
        self.inner.mean() + SimDuration::from_secs(self.offset)
    }

    fn min_delay(&self) -> f64 {
        self.offset + self.inner.min_delay()
    }

    fn consumes_rng(&self) -> bool {
        self.inner.consumes_rng()
    }

    fn upper_bound(&self) -> Option<SimDuration> {
        self.inner
            .upper_bound()
            .map(|b| b + SimDuration::from_secs(self.offset))
    }

    fn name(&self) -> &'static str {
        "shifted"
    }
}

/// The standard delay families used by the evaluation harness, all scaled
/// to a common mean.
///
/// Returns `(label, model)` pairs; used by the delay-robustness experiment
/// (the model only promises results in terms of the *expected* delay, so
/// complexity shapes must be family-invariant).
///
/// # Panics
///
/// Panics if `mean` is not finite and positive (the constituent
/// constructors validate it).
pub fn standard_families(mean: f64) -> Vec<(&'static str, SharedDelay)> {
    vec![
        (
            "deterministic",
            Arc::new(Deterministic::new(mean).expect("valid mean")) as SharedDelay,
        ),
        (
            "uniform",
            Arc::new(Uniform::from_mean(mean, 0.5).expect("valid mean")),
        ),
        (
            "exponential",
            Arc::new(Exponential::from_mean(mean).expect("valid mean")),
        ),
        (
            "erlang-4",
            Arc::new(Erlang::from_mean(4, mean).expect("valid mean")),
        ),
        (
            "pareto-2.5",
            Arc::new(Pareto::from_mean(2.5, mean).expect("valid mean")),
        ),
        (
            "lognormal",
            Arc::new(LogNormal::from_mean(mean, 1.0).expect("valid mean")),
        ),
        (
            "hyperexp",
            Arc::new(
                Hyperexponential::new(&[(0.9, mean * 0.5), (0.1, mean * 5.5)])
                    .expect("valid branches"),
            ),
        ),
        (
            "retransmission",
            Arc::new(Retransmission::new(1.0 / mean.max(1.0), 1.0).expect("valid p")),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    /// Empirical mean over `n` samples.
    fn empirical_mean(model: &dyn DelayModel, n: u64, seed: u64) -> f64 {
        let mut r = rng(seed);
        (0..n).map(|_| model.sample(&mut r).as_secs()).sum::<f64>() / n as f64
    }

    fn assert_mean_close(model: &dyn DelayModel, tolerance: f64) {
        let analytic = model.mean().as_secs();
        let empirical = empirical_mean(model, 200_000, 42);
        let rel = (empirical - analytic).abs() / analytic.max(1e-12);
        assert!(
            rel < tolerance,
            "{}: empirical mean {empirical} vs analytic {analytic} (rel err {rel})",
            model.name()
        );
    }

    #[test]
    fn deterministic_is_constant() {
        let m = Deterministic::new(2.5).unwrap();
        let mut r = rng(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r).as_secs(), 2.5);
        }
        assert_eq!(m.mean().as_secs(), 2.5);
        assert_eq!(m.upper_bound().unwrap().as_secs(), 2.5);
    }

    #[test]
    fn deterministic_zero() {
        let m = Deterministic::zero();
        assert_eq!(m.mean().as_secs(), 0.0);
    }

    #[test]
    fn deterministic_rejects_negative() {
        assert!(Deterministic::new(-1.0).is_err());
        assert!(Deterministic::new(f64::NAN).is_err());
    }

    #[test]
    fn uniform_support_and_mean() {
        let m = Uniform::new(1.0, 3.0).unwrap();
        let mut r = rng(2);
        for _ in 0..1000 {
            let s = m.sample(&mut r).as_secs();
            assert!((1.0..=3.0).contains(&s));
        }
        assert_eq!(m.mean().as_secs(), 2.0);
        assert_eq!(m.upper_bound().unwrap().as_secs(), 3.0);
        assert_mean_close(&m, 0.01);
    }

    #[test]
    fn uniform_from_mean() {
        let m = Uniform::from_mean(2.0, 0.5).unwrap();
        assert_eq!(m.mean().as_secs(), 2.0);
        assert_eq!(m.upper_bound().unwrap().as_secs(), 3.0);
    }

    #[test]
    fn uniform_rejects_reversed_bounds() {
        assert!(Uniform::new(3.0, 1.0).is_err());
        assert!(Uniform::from_mean(1.0, 1.5).is_err());
    }

    #[test]
    fn exponential_mean_matches() {
        let m = Exponential::from_mean(2.0).unwrap();
        assert_eq!(m.mean().as_secs(), 2.0);
        assert!(m.upper_bound().is_none());
        assert_mean_close(&m, 0.02);
    }

    #[test]
    fn exponential_from_rate() {
        let m = Exponential::from_rate(4.0).unwrap();
        assert_eq!(m.mean().as_secs(), 0.25);
    }

    #[test]
    fn exponential_rejects_bad_params() {
        assert!(Exponential::from_mean(0.0).is_err());
        assert!(Exponential::from_rate(-1.0).is_err());
        assert!(Exponential::from_mean(f64::INFINITY).is_err());
    }

    #[test]
    fn erlang_mean_matches() {
        let m = Erlang::from_mean(4, 2.0).unwrap();
        assert_eq!(m.stages(), 4);
        assert_eq!(m.mean().as_secs(), 2.0);
        assert_mean_close(&m, 0.02);
    }

    #[test]
    fn erlang_k1_equals_exponential_family() {
        let m = Erlang::from_mean(1, 3.0).unwrap();
        assert_eq!(m.mean().as_secs(), 3.0);
        assert!(m.upper_bound().is_none());
    }

    #[test]
    fn erlang_rejects_zero_stages() {
        assert!(Erlang::from_mean(0, 1.0).is_err());
    }

    #[test]
    fn erlang_has_lower_variance_than_exponential() {
        let exp = Exponential::from_mean(1.0).unwrap();
        let erl = Erlang::from_mean(16, 1.0).unwrap();
        let var = |m: &dyn DelayModel| {
            let mut r = rng(7);
            let n = 50_000;
            let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut r).as_secs()).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64
        };
        assert!(var(&erl) < var(&exp) * 0.25);
    }

    #[test]
    fn pareto_mean_matches() {
        let m = Pareto::from_mean(2.5, 1.0).unwrap();
        assert!((m.mean().as_secs() - 1.0).abs() < 1e-12);
        assert!(m.upper_bound().is_none());
        // Heavy tail: wider tolerance.
        assert_mean_close(&m, 0.05);
    }

    #[test]
    fn pareto_samples_at_least_scale() {
        let m = Pareto::new(2.0, 0.5).unwrap();
        let mut r = rng(3);
        for _ in 0..1000 {
            assert!(m.sample(&mut r).as_secs() >= 0.5);
        }
    }

    #[test]
    fn pareto_rejects_shape_at_most_one() {
        assert!(Pareto::new(1.0, 1.0).is_err());
        assert!(Pareto::from_mean(0.5, 1.0).is_err());
    }

    #[test]
    fn lognormal_mean_matches() {
        let m = LogNormal::from_mean(2.0, 0.75).unwrap();
        assert!((m.mean().as_secs() - 2.0).abs() < 1e-12);
        assert_mean_close(&m, 0.03);
    }

    #[test]
    fn lognormal_rejects_bad_sigma() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::from_mean(-2.0, 0.5).is_err());
    }

    #[test]
    fn hyperexponential_mean_matches() {
        let m = Hyperexponential::new(&[(0.9, 0.5), (0.1, 5.5)]).unwrap();
        assert!((m.mean().as_secs() - 1.0).abs() < 1e-12);
        assert_mean_close(&m, 0.03);
    }

    #[test]
    fn hyperexponential_single_branch_is_exponential() {
        let m = Hyperexponential::new(&[(1.0, 2.0)]).unwrap();
        assert_eq!(m.mean().as_secs(), 2.0);
    }

    #[test]
    fn hyperexponential_rejects_empty_and_bad_weights() {
        assert!(Hyperexponential::new(&[]).is_err());
        assert!(Hyperexponential::new(&[(0.0, 1.0)]).is_err());
        assert!(Hyperexponential::new(&[(1.0, 0.0)]).is_err());
    }

    #[test]
    fn bimodal_mean_and_bounds() {
        let m = Bimodal::new(1.0, 10.0, 0.1).unwrap();
        assert!((m.mean().as_secs() - 1.9).abs() < 1e-12);
        assert_eq!(m.upper_bound().unwrap().as_secs(), 10.0);
        assert_mean_close(&m, 0.03);
    }

    #[test]
    fn bimodal_never_slow_bound_is_fast() {
        let m = Bimodal::new(1.0, 10.0, 0.0).unwrap();
        assert_eq!(m.upper_bound().unwrap().as_secs(), 1.0);
    }

    #[test]
    fn bimodal_rejects_reversed_modes() {
        assert!(Bimodal::new(2.0, 1.0, 0.5).is_err());
        assert!(Bimodal::new(1.0, 2.0, 1.5).is_err());
    }

    #[test]
    fn gamma_matches_known_values() {
        // Γ(n) = (n−1)! on integers; Γ(1/2) = √π.
        for (x, want) in [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0), (5.0, 24.0)] {
            assert!((gamma(x) - want).abs() < 1e-10, "Γ({x}) = {}", gamma(x));
        }
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        // k = 1 collapses to Exp(λ): identical inverse-CDF, so identical
        // samples from identical streams.
        let w = Weibull::from_mean(1.0, 2.0).unwrap();
        let e = Exponential::from_mean(2.0).unwrap();
        assert!((w.mean().as_secs() - 2.0).abs() < 1e-12);
        let (mut ra, mut rb) = (rng(14), rng(14));
        for _ in 0..100 {
            assert!((w.sample(&mut ra).as_secs() - e.sample(&mut rb).as_secs()).abs() < 1e-12);
        }
    }

    #[test]
    fn weibull_mean_matches() {
        for shape in [0.5, 1.0, 1.5, 3.0] {
            let m = Weibull::from_mean(shape, 2.0).unwrap();
            assert!(
                (m.mean().as_secs() - 2.0).abs() < 1e-9,
                "shape {shape}: analytic mean {}",
                m.mean()
            );
            // Heavy tails at small shape: widen the tolerance there.
            assert_mean_close(&m, if shape < 1.0 { 0.05 } else { 0.02 });
        }
        assert!(Weibull::from_mean(2.0, 1.0)
            .unwrap()
            .upper_bound()
            .is_none());
        assert_eq!(Weibull::from_mean(2.0, 1.0).unwrap().shape(), 2.0);
    }

    #[test]
    fn weibull_rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::from_mean(f64::NAN, 1.0).is_err());
        assert!(Weibull::from_mean(1.0, -2.0).is_err());
        assert!(Weibull::from_mean(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn retransmission_mean_is_slot_over_p() {
        // The paper's §1 computation: k_avg = Σ (k+1)(1-p)^k p = 1/p.
        for &p in &[0.1, 0.25, 0.5, 0.9, 1.0] {
            let m = Retransmission::new(p, 1.0).unwrap();
            assert!((m.mean().as_secs() - 1.0 / p).abs() < 1e-12);
        }
        let m = Retransmission::new(0.25, 2.0).unwrap();
        assert_eq!(m.mean().as_secs(), 8.0);
        assert_mean_close(&m, 0.02);
    }

    #[test]
    fn retransmission_attempts_at_least_one() {
        let m = Retransmission::new(0.05, 1.0).unwrap();
        let mut r = rng(4);
        for _ in 0..10_000 {
            assert!(m.sample_attempts(&mut r) >= 1);
        }
    }

    #[test]
    fn retransmission_attempts_mean_is_one_over_p() {
        let m = Retransmission::new(0.2, 1.0).unwrap();
        let mut r = rng(5);
        let n = 200_000u64;
        let mean = (0..n)
            .map(|_| m.sample_attempts(&mut r) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "got {mean}");
    }

    #[test]
    fn retransmission_perfect_channel_is_bounded() {
        let m = Retransmission::new(1.0, 3.0).unwrap();
        let mut r = rng(6);
        assert_eq!(m.sample(&mut r).as_secs(), 3.0);
        assert_eq!(m.upper_bound().unwrap().as_secs(), 3.0);
    }

    #[test]
    fn retransmission_lossy_channel_is_unbounded() {
        let m = Retransmission::new(0.5, 1.0).unwrap();
        assert!(m.upper_bound().is_none());
    }

    #[test]
    fn retransmission_rejects_bad_p() {
        assert!(Retransmission::new(0.0, 1.0).is_err());
        assert!(Retransmission::new(1.5, 1.0).is_err());
        assert!(Retransmission::new(0.5, 0.0).is_err());
    }

    #[test]
    fn shifted_adds_offset() {
        let m = Shifted::new(1.0, Deterministic::new(2.0).unwrap()).unwrap();
        let mut r = rng(8);
        assert_eq!(m.sample(&mut r).as_secs(), 3.0);
        assert_eq!(m.mean().as_secs(), 3.0);
        assert_eq!(m.upper_bound().unwrap().as_secs(), 3.0);
    }

    #[test]
    fn shifted_preserves_unboundedness() {
        let m = Shifted::new(1.0, Exponential::from_mean(1.0).unwrap()).unwrap();
        assert!(m.upper_bound().is_none());
        assert_eq!(m.mean().as_secs(), 2.0);
    }

    #[test]
    fn all_samples_non_negative_and_finite() {
        let mean = 1.5;
        for (label, model) in standard_families(mean) {
            let mut r = rng(9);
            for _ in 0..10_000 {
                let s = model.sample(&mut r).as_secs();
                assert!(s.is_finite() && s >= 0.0, "{label} produced {s}");
            }
        }
    }

    #[test]
    fn standard_families_share_the_mean() {
        // The retransmission member's mean is slot/p = mean only when
        // mean >= 1 (p ≤ 1); use such a mean here.
        for (label, model) in standard_families(2.0) {
            assert!(
                (model.mean().as_secs() - 2.0).abs() < 1e-9,
                "{label} has mean {}",
                model.mean()
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = Exponential::from_mean(1.0).unwrap();
        let mut a = rng(10);
        let mut b = rng(10);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
