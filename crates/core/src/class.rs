//! Network classes: asynchronous, ABD, and ABE (Definition 1).
//!
//! A [`NetworkClass`] is a *contract* between an algorithm and its
//! environment. Algorithms for ABE networks may rely on knowing `δ`
//! (expected-delay bound), `[s_low, s_high]` (clock-rate bounds), and `γ`
//! (expected processing bound); algorithms for ABD networks may rely on a
//! *hard* delay bound. [`NetworkClass::validate`] checks a concrete
//! configuration (delay model, clock spec, processing model) against the
//! declared class, so experiments cannot accidentally hand an algorithm a
//! network that is stronger than claimed.

use abe_sim::SimDuration;

use crate::clock::ClockSpec;
use crate::delay::DelayModel;
use crate::error::{ClassViolation, InvalidParamError};

/// The known bounds of an ABE network (Definition 1 of the paper).
///
/// # Examples
///
/// ```
/// use abe_core::AbeParams;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // δ = 1s expected delay, clocks within [0.5, 2.0], γ = 0.01s processing.
/// let params = AbeParams::new(1.0, 0.5, 2.0, 0.01)?;
/// assert_eq!(params.delta().as_secs(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbeParams {
    delta: SimDuration,
    s_low: f64,
    s_high: f64,
    gamma: SimDuration,
}

impl AbeParams {
    /// Creates ABE bounds.
    ///
    /// # Errors
    ///
    /// Returns an error unless `delta > 0`, `0 < s_low ≤ s_high` (finite),
    /// and `gamma ≥ 0`.
    pub fn new(delta: f64, s_low: f64, s_high: f64, gamma: f64) -> Result<Self, InvalidParamError> {
        if !(delta.is_finite() && delta > 0.0) {
            return Err(InvalidParamError::new(
                "delta",
                "must be finite and positive",
                delta,
            ));
        }
        if !(s_low.is_finite() && s_low > 0.0) {
            return Err(InvalidParamError::new(
                "s_low",
                "must be finite and positive",
                s_low,
            ));
        }
        if !(s_high.is_finite() && s_high >= s_low) {
            return Err(InvalidParamError::new(
                "s_high",
                "must be finite and >= s_low",
                s_high,
            ));
        }
        if !(gamma.is_finite() && gamma >= 0.0) {
            return Err(InvalidParamError::new(
                "gamma",
                "must be finite and non-negative",
                gamma,
            ));
        }
        Ok(Self {
            delta: SimDuration::from_secs(delta),
            s_low,
            s_high,
            gamma: SimDuration::from_secs(gamma),
        })
    }

    /// Convenient bounds for pure-delay studies: `δ = delta`, perfect
    /// clocks, instantaneous processing.
    ///
    /// # Errors
    ///
    /// Returns an error unless `delta` is finite and positive.
    pub fn with_delta(delta: f64) -> Result<Self, InvalidParamError> {
        Self::new(delta, 1.0, 1.0, 0.0)
    }

    /// The bound `δ` on the expected message delay.
    pub fn delta(&self) -> SimDuration {
        self.delta
    }

    /// The slowest admissible clock rate `s_low`.
    pub fn s_low(&self) -> f64 {
        self.s_low
    }

    /// The fastest admissible clock rate `s_high`.
    pub fn s_high(&self) -> f64 {
        self.s_high
    }

    /// The bound `γ` on the expected local processing time.
    pub fn gamma(&self) -> SimDuration {
        self.gamma
    }
}

/// A network model class, ordered from weakest to strongest assumptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkClass {
    /// Only eventual delivery is guaranteed; nothing is known.
    Asynchronous,
    /// A *hard* bound on every message delay is known (Chou et al. 1990).
    Abd {
        /// The hard delay bound.
        delay_bound: SimDuration,
    },
    /// A bound on the *expected* delay is known (this paper).
    Abe(AbeParams),
}

impl NetworkClass {
    /// Checks that a concrete configuration satisfies this class.
    ///
    /// # Errors
    ///
    /// Returns the first [`ClassViolation`] found:
    ///
    /// * `Asynchronous` accepts everything.
    /// * `Abd` requires the delay support to be bounded by `delay_bound`.
    /// * `Abe` requires `mean(delay) ≤ δ`, clock rates within
    ///   `[s_low, s_high]`, and `mean(processing) ≤ γ`.
    pub fn validate(
        &self,
        delay: &dyn DelayModel,
        clocks: &ClockSpec,
        processing: &dyn DelayModel,
    ) -> Result<(), ClassViolation> {
        match self {
            NetworkClass::Asynchronous => Ok(()),
            NetworkClass::Abd { delay_bound } => match delay.upper_bound() {
                None => Err(ClassViolation::DelayUnbounded),
                Some(sup) if sup > *delay_bound => Err(ClassViolation::DelayExceedsBound {
                    sup: sup.as_secs(),
                    bound: delay_bound.as_secs(),
                }),
                Some(_) => Ok(()),
            },
            NetworkClass::Abe(params) => {
                if delay.mean() > params.delta {
                    return Err(ClassViolation::MeanDelayExceedsDelta {
                        mean: delay.mean().as_secs(),
                        delta: params.delta.as_secs(),
                    });
                }
                if clocks.s_low() < params.s_low || clocks.s_high() > params.s_high {
                    return Err(ClassViolation::ClockRateOutOfBounds {
                        spec_low: clocks.s_low(),
                        spec_high: clocks.s_high(),
                        s_low: params.s_low,
                        s_high: params.s_high,
                    });
                }
                if processing.mean() > params.gamma {
                    return Err(ClassViolation::ProcessingExceedsGamma {
                        mean: processing.mean().as_secs(),
                        gamma: params.gamma.as_secs(),
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftMode;
    use crate::delay::{Deterministic, Exponential, Uniform};

    fn perfect_clocks() -> ClockSpec {
        ClockSpec::perfect()
    }

    fn no_processing() -> Deterministic {
        Deterministic::zero()
    }

    #[test]
    fn abe_params_validation() {
        assert!(AbeParams::new(1.0, 0.5, 2.0, 0.0).is_ok());
        assert!(AbeParams::new(0.0, 0.5, 2.0, 0.0).is_err());
        assert!(AbeParams::new(1.0, 0.0, 2.0, 0.0).is_err());
        assert!(AbeParams::new(1.0, 2.0, 0.5, 0.0).is_err());
        assert!(AbeParams::new(1.0, 0.5, 2.0, -1.0).is_err());
        assert!(AbeParams::new(f64::NAN, 0.5, 2.0, 0.0).is_err());
    }

    #[test]
    fn asynchronous_accepts_anything() {
        let delay = Exponential::from_mean(1e6).unwrap();
        let clocks = ClockSpec::new(0.001, 1000.0, DriftMode::Wander).unwrap();
        assert!(NetworkClass::Asynchronous
            .validate(&delay, &clocks, &no_processing())
            .is_ok());
    }

    #[test]
    fn abd_rejects_unbounded_delay() {
        let class = NetworkClass::Abd {
            delay_bound: SimDuration::from_secs(10.0),
        };
        let exp = Exponential::from_mean(0.1).unwrap();
        assert_eq!(
            class.validate(&exp, &perfect_clocks(), &no_processing()),
            Err(ClassViolation::DelayUnbounded)
        );
    }

    #[test]
    fn abd_accepts_bounded_delay_within_bound() {
        let class = NetworkClass::Abd {
            delay_bound: SimDuration::from_secs(3.0),
        };
        let uni = Uniform::new(0.5, 3.0).unwrap();
        assert!(class
            .validate(&uni, &perfect_clocks(), &no_processing())
            .is_ok());
    }

    #[test]
    fn abd_rejects_delay_over_bound() {
        let class = NetworkClass::Abd {
            delay_bound: SimDuration::from_secs(1.0),
        };
        let uni = Uniform::new(0.5, 3.0).unwrap();
        assert!(matches!(
            class.validate(&uni, &perfect_clocks(), &no_processing()),
            Err(ClassViolation::DelayExceedsBound { .. })
        ));
    }

    #[test]
    fn abe_accepts_unbounded_delay_with_bounded_mean() {
        // The defining property of ABE: exponential delay is fine.
        let params = AbeParams::with_delta(1.0).unwrap();
        let exp = Exponential::from_mean(1.0).unwrap();
        assert!(NetworkClass::Abe(params)
            .validate(&exp, &perfect_clocks(), &no_processing())
            .is_ok());
    }

    #[test]
    fn abe_rejects_mean_over_delta() {
        let params = AbeParams::with_delta(1.0).unwrap();
        let exp = Exponential::from_mean(1.5).unwrap();
        assert!(matches!(
            NetworkClass::Abe(params).validate(&exp, &perfect_clocks(), &no_processing()),
            Err(ClassViolation::MeanDelayExceedsDelta { .. })
        ));
    }

    #[test]
    fn abe_rejects_clock_rates_outside_bounds() {
        let params = AbeParams::new(1.0, 0.5, 2.0, 0.0).unwrap();
        let clocks = ClockSpec::new(0.25, 1.0, DriftMode::Fixed).unwrap();
        let exp = Exponential::from_mean(1.0).unwrap();
        assert!(matches!(
            NetworkClass::Abe(params).validate(&exp, &clocks, &no_processing()),
            Err(ClassViolation::ClockRateOutOfBounds { .. })
        ));
    }

    #[test]
    fn abe_rejects_processing_over_gamma() {
        let params = AbeParams::new(1.0, 1.0, 1.0, 0.001).unwrap();
        let exp = Exponential::from_mean(1.0).unwrap();
        let slow_proc = Deterministic::new(0.01).unwrap();
        assert!(matches!(
            NetworkClass::Abe(params).validate(&exp, &perfect_clocks(), &slow_proc),
            Err(ClassViolation::ProcessingExceedsGamma { .. })
        ));
    }

    #[test]
    fn abd_configuration_is_also_valid_abe() {
        // ABD ⊂ ABE: a deterministic delay d satisfies ABE with δ = d.
        let det = Deterministic::new(1.0).unwrap();
        let abd = NetworkClass::Abd {
            delay_bound: SimDuration::from_secs(1.0),
        };
        let abe = NetworkClass::Abe(AbeParams::with_delta(1.0).unwrap());
        assert!(abd
            .validate(&det, &perfect_clocks(), &no_processing())
            .is_ok());
        assert!(abe
            .validate(&det, &perfect_clocks(), &no_processing())
            .is_ok());
    }
}
