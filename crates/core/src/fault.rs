//! Deterministic, seedable fault injection for ABE networks.
//!
//! The ABE model of Definition 1 already absorbs one failure mode — §1
//! case (iii) lossy channels under retransmission, via
//! [`delay::Retransmission`](crate::delay::Retransmission) — but says
//! nothing about *process* failures or adversarial link conditions. This
//! module adds them as a declarative plan composed into
//! [`NetworkBuilder`](crate::NetworkBuilder):
//!
//! * **crash-stop / crash-recover** — a node goes down at a virtual time
//!   and (optionally) comes back; while down it dispatches no handlers,
//!   its pending tick is cancelled, and every message delivered to it is
//!   lost. Protocol state is frozen, not reset (fail-pause semantics);
//!   its local clock keeps running, so on recovery local time has moved.
//! * **random drops** — each message sent on a matching edge is lost
//!   independently with probability `p`, drawn from a per-edge `"drop"`
//!   [`SeedStream`] child stream (keyed by edge id, so sharded runs draw
//!   identically; see `crate::shard`). Runs stay bit-reproducible and an
//!   *empty* plan consumes zero random draws.
//! * **partition windows** — a node set is cut off during `[from, until)`:
//!   messages **sent** inside the window on an edge crossing the cut are
//!   dropped. Messages already in flight when the window opens escape it.
//! * **delay storms** — delays sampled on matching edges for sends inside
//!   `[from, until)` are multiplied by a factor (overlapping storms
//!   compound), modelling congestion bursts that stretch the expected
//!   delay past its bound without losing messages.
//!
//! Every loss and every crash is counted in [`FaultStats`], surfaced on
//! [`NetworkReport`](crate::NetworkReport) — faults never silently vanish
//! from the telemetry.
//!
//! # Examples
//!
//! ```
//! use abe_core::delay::Deterministic;
//! use abe_core::fault::FaultPlan;
//! use abe_core::{Ctx, InPort, NetworkBuilder, OutPort, Protocol, Topology};
//! use abe_sim::RunLimits;
//!
//! /// Forwards a token around the ring forever (until someone dies).
//! #[derive(Debug)]
//! struct Forwarder {
//!     fire: bool,
//! }
//! impl Protocol for Forwarder {
//!     type Message = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
//!         if self.fire {
//!             ctx.send(OutPort(0), ());
//!         }
//!     }
//!     fn on_message(&mut self, _from: InPort, _msg: (), ctx: &mut Ctx<'_, ()>) {
//!         ctx.send(OutPort(0), ());
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Node 2 crash-stops at t = 5: the token dies with it.
//! let net = NetworkBuilder::new(Topology::unidirectional_ring(4)?)
//!     .delay(Deterministic::new(1.0)?)
//!     .fault(FaultPlan::new().crash_stop(2, 5.0))
//!     .build(|i| Forwarder { fire: i == 0 })?;
//! let (report, _) = net.run(RunLimits::unbounded());
//! assert!(report.outcome.is_quiescent());
//! assert_eq!(report.faults.crashes, 1);
//! assert_eq!(report.faults.dropped_crash, 1);
//! assert_eq!(report.in_flight, 0); // the lost message is accounted for
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use abe_sim::{SeedStream, Xoshiro256PlusPlus};

use crate::topology::Topology;

/// Which edges a drop rule or delay storm applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeSelector {
    /// Every edge of the topology.
    All,
    /// An explicit list of edge indices (in [`Topology`] edge-id order).
    Edges(Vec<u32>),
}

impl EdgeSelector {
    fn validate(&self, topo: &Topology) -> Result<(), FaultPlanError> {
        if let EdgeSelector::Edges(edges) = self {
            let count = topo.edge_count();
            for &edge in edges {
                if edge as usize >= count {
                    return Err(FaultPlanError::EdgeOutOfRange { edge, edges: count });
                }
            }
        }
        Ok(())
    }

    /// Per-edge membership mask, or `None` for "all edges".
    fn mask(&self, edge_count: usize) -> Option<Vec<bool>> {
        match self {
            EdgeSelector::All => None,
            EdgeSelector::Edges(edges) => {
                let mut mask = vec![false; edge_count];
                for &edge in edges {
                    mask[edge as usize] = true;
                }
                Some(mask)
            }
        }
    }
}

/// One node outage: down at `at`, back at `recover_at` (never, if `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashWindow {
    /// The node that goes down.
    pub node: u32,
    /// Virtual time of the crash (seconds).
    pub at: f64,
    /// Virtual time of the recovery; `None` means crash-stop.
    pub recover_at: Option<f64>,
}

/// Independent per-message loss on a set of edges.
#[derive(Debug, Clone, PartialEq)]
pub struct DropRule {
    /// The edges the rule applies to.
    pub edges: EdgeSelector,
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
}

/// A node set cut off from the rest of the network for `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// The nodes on the minority side of the cut.
    pub nodes: Vec<u32>,
    /// Window start (seconds, inclusive).
    pub from: f64,
    /// Window end (seconds, exclusive; may be `f64::INFINITY`).
    pub until: f64,
}

/// A delay-multiplication window on a set of edges.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayStorm {
    /// The edges the storm covers.
    pub edges: EdgeSelector,
    /// Window start (seconds, inclusive).
    pub from: f64,
    /// Window end (seconds, exclusive).
    pub until: f64,
    /// Multiplier applied to sampled channel delays (must be finite, > 0).
    pub factor: f64,
}

/// A declarative fault schedule, composed into
/// [`NetworkBuilder::fault`](crate::NetworkBuilder::fault).
///
/// The default plan is empty and injects nothing; an empty plan leaves a
/// simulation bit-identical to one built without any plan at all (no
/// extra events, no random draws).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    crashes: Vec<CrashWindow>,
    drops: Vec<DropRule>,
    partitions: Vec<PartitionWindow>,
    storms: Vec<DelayStorm>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.drops.is_empty()
            && self.partitions.is_empty()
            && self.storms.is_empty()
    }

    /// Crashes `node` at `at` forever (crash-stop).
    pub fn crash_stop(mut self, node: u32, at: f64) -> Self {
        self.crashes.push(CrashWindow {
            node,
            at,
            recover_at: None,
        });
        self
    }

    /// Crashes `node` at `at`, recovering it at `recover_at`
    /// (crash-recover; state is frozen while down).
    pub fn crash_recover(mut self, node: u32, at: f64, recover_at: f64) -> Self {
        self.crashes.push(CrashWindow {
            node,
            at,
            recover_at: Some(recover_at),
        });
        self
    }

    /// Drops each message on `edges` independently with probability `p`.
    ///
    /// Multiple rules covering the same edge compound:
    /// `p = 1 − Π (1 − p_i)`.
    pub fn drop(mut self, edges: EdgeSelector, p: f64) -> Self {
        self.drops.push(DropRule {
            edges,
            probability: p,
        });
        self
    }

    /// Cuts `nodes` off from the rest of the network during
    /// `[from, until)`: messages sent inside the window on an edge with
    /// exactly one endpoint in the set are dropped.
    pub fn partition(mut self, nodes: Vec<u32>, from: f64, until: f64) -> Self {
        self.partitions.push(PartitionWindow { nodes, from, until });
        self
    }

    /// Multiplies delays sampled on `edges` by `factor` for sends inside
    /// `[from, until)`. Overlapping storms compound multiplicatively.
    pub fn delay_storm(mut self, edges: EdgeSelector, from: f64, until: f64, factor: f64) -> Self {
        self.storms.push(DelayStorm {
            edges,
            from,
            until,
            factor,
        });
        self
    }

    /// Generates a crash-recover churn schedule: `events` outages of
    /// `downtime` seconds each, on nodes and start times drawn uniformly
    /// from `[0, horizon)` via the `"churn"` [`SeedStream`] child stream
    /// of `seed` — fully deterministic in `(n, events, horizon, downtime,
    /// seed)`, independent of any other stream in the simulation.
    ///
    /// A non-positive `downtime` means zero-length outages: the plan is
    /// empty (nodes and times are still drawn, so a downtime sweep axis
    /// keeps its crash sites paired across downtime values).
    pub fn churn(n: u32, events: u32, horizon: f64, downtime: f64, seed: u64) -> Self {
        let mut rng = SeedStream::new(seed).stream("churn", 0);
        let mut plan = Self::new();
        for _ in 0..events {
            let node = ((rng.uniform_f64() * f64::from(n)) as u32).min(n.saturating_sub(1));
            let at = rng.uniform_f64() * horizon;
            if downtime > 0.0 {
                plan = plan.crash_recover(node, at, at + downtime);
            }
        }
        plan
    }

    /// The crash windows of the plan, in insertion order.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// Checks every node index, edge index, time, probability, and factor
    /// against the topology and its own domain.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint. Called automatically by
    /// [`NetworkBuilder::build`](crate::NetworkBuilder::build).
    pub fn validate(&self, topo: &Topology) -> Result<(), FaultPlanError> {
        let n = topo.node_count();
        let check_node = |node: u32| {
            if node >= n {
                Err(FaultPlanError::NodeOutOfRange { node, nodes: n })
            } else {
                Ok(())
            }
        };
        let check_time = |what: &'static str, value: f64| {
            if value.is_finite() && value >= 0.0 {
                Ok(())
            } else {
                Err(FaultPlanError::InvalidTime { what, value })
            }
        };
        for crash in &self.crashes {
            check_node(crash.node)?;
            check_time("crash time", crash.at)?;
            if let Some(recover_at) = crash.recover_at {
                check_time("recovery time", recover_at)?;
                if recover_at <= crash.at {
                    return Err(FaultPlanError::InvalidWindow {
                        what: "crash window",
                        from: crash.at,
                        until: recover_at,
                    });
                }
            }
        }
        for rule in &self.drops {
            rule.edges.validate(topo)?;
            if !(0.0..=1.0).contains(&rule.probability) {
                return Err(FaultPlanError::InvalidProbability {
                    p: rule.probability,
                });
            }
        }
        for part in &self.partitions {
            for &node in &part.nodes {
                check_node(node)?;
            }
            check_time("partition start", part.from)?;
            // NaN-safe: a NaN `until` must be rejected, not accepted.
            if part.until.is_nan() || part.until <= part.from {
                return Err(FaultPlanError::InvalidWindow {
                    what: "partition window",
                    from: part.from,
                    until: part.until,
                });
            }
        }
        for storm in &self.storms {
            storm.edges.validate(topo)?;
            check_time("storm start", storm.from)?;
            if storm.until.is_nan() || storm.until <= storm.from {
                return Err(FaultPlanError::InvalidWindow {
                    what: "storm window",
                    from: storm.from,
                    until: storm.until,
                });
            }
            if !(storm.factor.is_finite() && storm.factor > 0.0) {
                return Err(FaultPlanError::InvalidFactor {
                    factor: storm.factor,
                });
            }
        }
        Ok(())
    }
}

/// Error returned when a [`FaultPlan`] references a node or edge the
/// topology does not have, or uses a value outside its domain.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A node index was `>= node_count`.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the topology.
        nodes: u32,
    },
    /// An edge index was `>= edge_count`.
    EdgeOutOfRange {
        /// The offending edge index.
        edge: u32,
        /// Number of edges in the topology.
        edges: usize,
    },
    /// A window had `until <= from`.
    InvalidWindow {
        /// Which window kind was rejected.
        what: &'static str,
        /// Window start.
        from: f64,
        /// Window end.
        until: f64,
    },
    /// A drop probability was outside `[0, 1]`.
    InvalidProbability {
        /// The offending probability.
        p: f64,
    },
    /// A storm factor was not finite and positive.
    InvalidFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A time was negative, NaN, or infinite where finiteness is required.
    InvalidTime {
        /// Which time was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NodeOutOfRange { node, nodes } => {
                write!(f, "fault plan node {node} out of range for {nodes} nodes")
            }
            FaultPlanError::EdgeOutOfRange { edge, edges } => {
                write!(f, "fault plan edge {edge} out of range for {edges} edges")
            }
            FaultPlanError::InvalidWindow { what, from, until } => {
                write!(f, "invalid {what}: [{from}, {until}) is empty or reversed")
            }
            FaultPlanError::InvalidProbability { p } => {
                write!(f, "drop probability {p} outside [0, 1]")
            }
            FaultPlanError::InvalidFactor { factor } => {
                write!(f, "storm factor {factor} must be finite and positive")
            }
            FaultPlanError::InvalidTime { what, value } => {
                write!(f, "invalid {what}: {value} must be finite and non-negative")
            }
        }
    }
}

impl Error for FaultPlanError {}

/// Fault-injection telemetry for one run, surfaced on
/// [`NetworkReport`](crate::NetworkReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Crash events fired.
    pub crashes: u64,
    /// Recovery events fired.
    pub recoveries: u64,
    /// Messages lost because the destination was down at delivery time.
    pub dropped_crash: u64,
    /// Messages lost to a partition window at send time.
    pub dropped_partition: u64,
    /// Messages lost to random edge drops.
    pub dropped_random: u64,
    /// Deliveries whose delay was stretched by at least one storm.
    pub storm_deliveries: u64,
}

impl FaultStats {
    /// Total messages lost to faults (crash + partition + random).
    ///
    /// # Examples
    ///
    /// ```
    /// use abe_core::fault::FaultStats;
    ///
    /// let stats = FaultStats {
    ///     dropped_crash: 1,
    ///     dropped_partition: 2,
    ///     dropped_random: 3,
    ///     ..FaultStats::default()
    /// };
    /// assert_eq!(stats.dropped(), 6);
    /// ```
    pub fn dropped(&self) -> u64 {
        self.dropped_crash + self.dropped_partition + self.dropped_random
    }

    /// Folds another counter set into this one (used to combine per-shard
    /// fault telemetry into one run-level report).
    ///
    /// # Examples
    ///
    /// ```
    /// use abe_core::fault::FaultStats;
    ///
    /// let mut a = FaultStats { crashes: 1, ..FaultStats::default() };
    /// let b = FaultStats { crashes: 2, dropped_random: 5, ..FaultStats::default() };
    /// a.merge(&b);
    /// assert_eq!(a.crashes, 3);
    /// assert_eq!(a.dropped_random, 5);
    /// ```
    pub fn merge(&mut self, other: &FaultStats) {
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.dropped_crash += other.dropped_crash;
        self.dropped_partition += other.dropped_partition;
        self.dropped_random += other.dropped_random;
        self.storm_deliveries += other.storm_deliveries;
    }
}

/// How a run under faults ended, as classified by the algorithm runners
/// (election, waves, synchronisers, consensus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeClass {
    /// The algorithm reached its goal (one leader, full coverage, all
    /// rounds fired).
    Completed,
    /// The run ended without reaching the goal — typically because a
    /// fault consumed a message the algorithm cannot regenerate.
    Stalled,
    /// The run produced an *incorrect* result (e.g. more than one
    /// leader), the worst failure mode.
    WrongLeader,
    /// A consensus run in which a quorum of correct nodes decided a
    /// common value (the consensus analogue of [`Completed`](Self::Completed)).
    Decided,
    /// Two nodes decided *different* values — a consensus safety
    /// violation, never acceptable under any fault or adversary budget.
    AgreementViolation,
    /// A node decided a value that no node proposed (binary consensus) or
    /// delivered a payload the broadcaster never sent (reliable
    /// broadcast) — the other consensus safety violation.
    ValidityViolation,
}

impl OutcomeClass {
    /// Every variant, in declaration order (for exhaustive property
    /// tests over the name round-trip).
    pub const ALL: [OutcomeClass; 6] = [
        OutcomeClass::Completed,
        OutcomeClass::Stalled,
        OutcomeClass::WrongLeader,
        OutcomeClass::Decided,
        OutcomeClass::AgreementViolation,
        OutcomeClass::ValidityViolation,
    ];

    /// Stable lower-case name, as used in tables and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeClass::Completed => "completed",
            OutcomeClass::Stalled => "stalled",
            OutcomeClass::WrongLeader => "wrong-leader",
            OutcomeClass::Decided => "decided",
            OutcomeClass::AgreementViolation => "agreement-violation",
            OutcomeClass::ValidityViolation => "validity-violation",
        }
    }

    /// Inverse of [`as_str`](Self::as_str): resolves a stable name back to
    /// the class, or `None` for anything else.
    ///
    /// ```
    /// use abe_core::fault::OutcomeClass;
    /// assert_eq!(
    ///     OutcomeClass::from_name("wrong-leader"),
    ///     Some(OutcomeClass::WrongLeader)
    /// );
    /// assert_eq!(
    ///     OutcomeClass::from_name("agreement-violation"),
    ///     Some(OutcomeClass::AgreementViolation)
    /// );
    /// assert_eq!(OutcomeClass::from_name("mixed"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "completed" => Some(OutcomeClass::Completed),
            "stalled" => Some(OutcomeClass::Stalled),
            "wrong-leader" => Some(OutcomeClass::WrongLeader),
            "decided" => Some(OutcomeClass::Decided),
            "agreement-violation" => Some(OutcomeClass::AgreementViolation),
            "validity-violation" => Some(OutcomeClass::ValidityViolation),
            _ => None,
        }
    }

    /// Whether this class is a *correctness* violation (an incorrect
    /// result, as opposed to a merely unfinished one). Violations are
    /// hard failures for every standing oracle regardless of what a
    /// scenario declared it expects.
    ///
    /// ```
    /// use abe_core::fault::OutcomeClass;
    /// assert!(OutcomeClass::WrongLeader.is_violation());
    /// assert!(OutcomeClass::AgreementViolation.is_violation());
    /// assert!(!OutcomeClass::Stalled.is_violation());
    /// ```
    pub fn is_violation(self) -> bool {
        matches!(
            self,
            OutcomeClass::WrongLeader
                | OutcomeClass::AgreementViolation
                | OutcomeClass::ValidityViolation
        )
    }
}

impl fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fate of one message at send time, decided by [`FaultRuntime::on_send`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SendFate {
    /// Deliver, with the sampled channel delay multiplied by `stretch`.
    Deliver {
        /// Compound storm factor (1.0 when no storm applies).
        stretch: f64,
    },
    /// Lost to a partition window.
    DropPartition,
    /// Lost to a random edge drop.
    DropRandom,
}

#[derive(Clone)]
struct CompiledPartition {
    member: Vec<bool>,
    from: f64,
    until: f64,
}

#[derive(Clone)]
struct CompiledStorm {
    /// Per-edge membership; `None` means all edges.
    member: Option<Vec<bool>>,
    from: f64,
    until: f64,
    factor: f64,
}

/// The compiled, mutable runtime state of a plan inside a running
/// [`Network`](crate::Network).
#[derive(Clone)]
pub(crate) struct FaultRuntime {
    crashes: Vec<CrashWindow>,
    /// Per-node down counter (overlapping windows nest). Allocated only
    /// when the plan schedules crashes; empty means "nobody ever down".
    down: Vec<u32>,
    /// Per-edge compound drop probability; empty when no drop rules.
    drop_p: Vec<f64>,
    /// Per-edge drop-decision streams, populated exactly for edges with a
    /// positive drop probability. Keyed by edge id (`"drop"` seed-stream
    /// children), so the decision sequence of an edge is the same whether
    /// the whole network or only its shard executes the sends.
    drop_rngs: Vec<Option<Box<Xoshiro256PlusPlus>>>,
    partitions: Vec<CompiledPartition>,
    storms: Vec<CompiledStorm>,
    pub(crate) stats: FaultStats,
}

impl FaultRuntime {
    /// Compiles a validated plan against `topo`; `seeds` must be the
    /// builder's master [`SeedStream`] (drop streams derive from its
    /// `"drop"` children, one per edge with a positive probability).
    pub(crate) fn compile(plan: &FaultPlan, topo: &Topology, seeds: &SeedStream) -> Self {
        let n = topo.node_count() as usize;
        let edge_count = topo.edge_count();
        let drop_p = if plan.drops.is_empty() {
            Vec::new()
        } else {
            let mut keep = vec![1.0f64; edge_count];
            for rule in &plan.drops {
                match rule.edges.mask(edge_count) {
                    None => keep.iter_mut().for_each(|k| *k *= 1.0 - rule.probability),
                    Some(mask) => {
                        for (k, covered) in keep.iter_mut().zip(mask) {
                            if covered {
                                *k *= 1.0 - rule.probability;
                            }
                        }
                    }
                }
            }
            keep.into_iter().map(|k| 1.0 - k).collect()
        };
        let partitions = plan
            .partitions
            .iter()
            .map(|p| {
                let mut member = vec![false; n];
                for &node in &p.nodes {
                    member[node as usize] = true;
                }
                CompiledPartition {
                    member,
                    from: p.from,
                    until: p.until,
                }
            })
            .collect();
        let storms = plan
            .storms
            .iter()
            .map(|s| CompiledStorm {
                member: s.edges.mask(edge_count),
                from: s.from,
                until: s.until,
                factor: s.factor,
            })
            .collect();
        let drop_rngs = drop_p
            .iter()
            .enumerate()
            .map(|(e, &p)| (p > 0.0).then(|| Box::new(seeds.stream("drop", e as u64))))
            .collect();
        Self {
            crashes: plan.crashes.clone(),
            down: if plan.crashes.is_empty() {
                Vec::new()
            } else {
                vec![0; n]
            },
            drop_p,
            drop_rngs,
            partitions,
            storms,
            stats: FaultStats::default(),
        }
    }

    /// The crash windows to prime as events (insertion order).
    pub(crate) fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// Whether `node` is currently down.
    pub(crate) fn is_down(&self, node: usize) -> bool {
        // `down` is empty for crash-free plans (the common case at scale:
        // no per-node allocation, no memory traffic on the hot path); an
        // out-of-range index with crashes present must fail loudly.
        !self.down.is_empty() && self.down[node] > 0
    }

    pub(crate) fn on_crash(&mut self, node: usize) {
        self.down[node] += 1;
        self.stats.crashes += 1;
    }

    pub(crate) fn on_recover(&mut self, node: usize) {
        self.down[node] = self.down[node].saturating_sub(1);
        self.stats.recoveries += 1;
    }

    pub(crate) fn note_dropped_crash(&mut self) {
        self.stats.dropped_crash += 1;
    }

    /// Decides the fate of a message sent at `now` on `edge` from `src`
    /// to `dst`. Check order is fixed (partition → random drop → storms)
    /// so each edge's `"drop"` RNG stream is consumed deterministically:
    /// exactly one draw per send on an edge with a positive drop
    /// probability that was not already lost to a partition.
    pub(crate) fn on_send(&mut self, edge: usize, src: usize, dst: usize, now: f64) -> SendFate {
        for p in &self.partitions {
            if now >= p.from && now < p.until && (p.member[src] != p.member[dst]) {
                self.stats.dropped_partition += 1;
                return SendFate::DropPartition;
            }
        }
        if !self.drop_p.is_empty() {
            let p = self.drop_p[edge];
            if p > 0.0 {
                let rng = self.drop_rngs[edge]
                    .as_deref_mut()
                    .expect("positive-probability edge has a drop stream");
                if rng.uniform_f64() < p {
                    self.stats.dropped_random += 1;
                    return SendFate::DropRandom;
                }
            }
        }
        let mut stretch = 1.0;
        for s in &self.storms {
            if now >= s.from && now < s.until && s.member.as_ref().is_none_or(|m| m[edge]) {
                stretch *= s.factor;
            }
        }
        if stretch != 1.0 {
            self.stats.storm_deliveries += 1;
        }
        SendFate::Deliver { stretch }
    }

    /// Copies the down-state of nodes `lo..hi` from `owner` — the shard
    /// runtime that processed those nodes' crash/recover events — into
    /// this (merged) runtime. No-op for crash-free plans.
    pub(crate) fn adopt_down(&mut self, owner: &FaultRuntime, lo: usize, hi: usize) {
        if !self.down.is_empty() {
            self.down[lo..hi].copy_from_slice(&owner.down[lo..hi]);
        }
    }

    /// A static lower bound on the compound storm stretch any send on
    /// `edge` can ever receive: the product of all sub-unity factors whose
    /// storm covers the edge (as if they all overlapped). Used by the
    /// sharded kernel's lookahead; 1.0 when no storm can shrink delays.
    pub(crate) fn min_stretch(&self, edge: usize) -> f64 {
        self.storms
            .iter()
            .filter(|s| s.factor < 1.0 && s.member.as_ref().is_none_or(|m| m[edge]))
            .map(|s| s.factor)
            .product()
    }
}

impl fmt::Debug for FaultRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultRuntime")
            .field("crashes", &self.crashes.len())
            .field(
                "drop_edges",
                &self.drop_p.iter().filter(|&&p| p > 0.0).count(),
            )
            .field("partitions", &self.partitions.len())
            .field("storms", &self.storms.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> Topology {
        Topology::unidirectional_ring(n).unwrap()
    }

    fn seeds() -> SeedStream {
        SeedStream::new(0)
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.validate(&ring(3)).is_ok());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn builders_accumulate_rules() {
        let plan = FaultPlan::new()
            .crash_stop(0, 1.0)
            .crash_recover(1, 2.0, 3.0)
            .drop(EdgeSelector::All, 0.1)
            .partition(vec![0], 1.0, 2.0)
            .delay_storm(EdgeSelector::Edges(vec![0]), 0.0, 5.0, 4.0);
        assert!(!plan.is_empty());
        assert_eq!(plan.crashes().len(), 2);
        assert!(plan.validate(&ring(3)).is_ok());
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let topo = ring(3);
        assert!(matches!(
            FaultPlan::new().crash_stop(9, 1.0).validate(&topo),
            Err(FaultPlanError::NodeOutOfRange { node: 9, nodes: 3 })
        ));
        assert!(matches!(
            FaultPlan::new().crash_recover(0, 2.0, 1.0).validate(&topo),
            Err(FaultPlanError::InvalidWindow { .. })
        ));
        assert!(matches!(
            FaultPlan::new().crash_stop(0, f64::NAN).validate(&topo),
            Err(FaultPlanError::InvalidTime { .. })
        ));
        assert!(matches!(
            FaultPlan::new()
                .drop(EdgeSelector::All, 1.5)
                .validate(&topo),
            Err(FaultPlanError::InvalidProbability { .. })
        ));
        assert!(matches!(
            FaultPlan::new()
                .drop(EdgeSelector::Edges(vec![7]), 0.5)
                .validate(&topo),
            Err(FaultPlanError::EdgeOutOfRange { edge: 7, edges: 3 })
        ));
        assert!(matches!(
            FaultPlan::new()
                .partition(vec![0], 3.0, 3.0)
                .validate(&topo),
            Err(FaultPlanError::InvalidWindow { .. })
        ));
        assert!(matches!(
            FaultPlan::new()
                .delay_storm(EdgeSelector::All, 0.0, 1.0, 0.0)
                .validate(&topo),
            Err(FaultPlanError::InvalidFactor { .. })
        ));
        // Errors render without panicking.
        for err in [
            FaultPlanError::NodeOutOfRange { node: 1, nodes: 1 },
            FaultPlanError::EdgeOutOfRange { edge: 1, edges: 1 },
            FaultPlanError::InvalidWindow {
                what: "w",
                from: 1.0,
                until: 0.0,
            },
            FaultPlanError::InvalidProbability { p: 2.0 },
            FaultPlanError::InvalidFactor { factor: -1.0 },
            FaultPlanError::InvalidTime {
                what: "t",
                value: f64::NAN,
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn infinite_partition_end_is_allowed() {
        let plan = FaultPlan::new().partition(vec![0], 1.0, f64::INFINITY);
        assert!(plan.validate(&ring(3)).is_ok());
    }

    #[test]
    fn churn_is_deterministic_and_sized() {
        let a = FaultPlan::churn(8, 4, 100.0, 5.0, 42);
        let b = FaultPlan::churn(8, 4, 100.0, 5.0, 42);
        assert_eq!(a, b);
        assert_eq!(a.crashes().len(), 4);
        for c in a.crashes() {
            assert!(c.node < 8);
            assert!((0.0..100.0).contains(&c.at));
            assert_eq!(c.recover_at, Some(c.at + 5.0));
        }
        assert_ne!(a, FaultPlan::churn(8, 4, 100.0, 5.0, 43));
        assert!(FaultPlan::churn(8, 0, 100.0, 5.0, 42).is_empty());
        // Zero-length outages yield a valid empty plan, not recover <= at.
        assert!(FaultPlan::churn(8, 4, 100.0, 0.0, 42).is_empty());
        assert!(FaultPlan::churn(8, 4, 100.0, -1.0, 42).is_empty());
        assert!(a.validate(&ring(8)).is_ok());
    }

    #[test]
    fn runtime_tracks_down_state() {
        let plan = FaultPlan::new().crash_recover(1, 1.0, 2.0);
        let mut rt = FaultRuntime::compile(&plan, &ring(3), &seeds());
        assert!(!rt.is_down(1));
        rt.on_crash(1);
        assert!(rt.is_down(1));
        assert!(!rt.is_down(0));
        // Overlapping windows nest.
        rt.on_crash(1);
        rt.on_recover(1);
        assert!(rt.is_down(1));
        rt.on_recover(1);
        assert!(!rt.is_down(1));
        assert_eq!(rt.stats.crashes, 2);
        assert_eq!(rt.stats.recoveries, 2);
    }

    #[test]
    fn partition_drops_only_cut_crossing_sends_inside_window() {
        let plan = FaultPlan::new().partition(vec![1], 1.0, 2.0);
        let mut rt = FaultRuntime::compile(&plan, &ring(3), &seeds());
        // Edge 0: n0 -> n1 crosses the cut.
        assert_eq!(rt.on_send(0, 0, 1, 1.5), SendFate::DropPartition);
        // Outside the window: delivered.
        assert_eq!(rt.on_send(0, 0, 1, 0.5), SendFate::Deliver { stretch: 1.0 });
        assert_eq!(rt.on_send(0, 0, 1, 2.0), SendFate::Deliver { stretch: 1.0 });
        // Edge 2: n2 -> n0 does not cross the cut.
        assert_eq!(rt.on_send(2, 2, 0, 1.5), SendFate::Deliver { stretch: 1.0 });
        assert_eq!(rt.stats.dropped_partition, 1);
    }

    #[test]
    fn drop_probability_extremes() {
        let always = FaultPlan::new().drop(EdgeSelector::All, 1.0);
        let mut rt = FaultRuntime::compile(&always, &ring(3), &seeds());
        for _ in 0..10 {
            assert_eq!(rt.on_send(0, 0, 1, 0.0), SendFate::DropRandom);
        }
        let never = FaultPlan::new().drop(EdgeSelector::All, 0.0);
        let mut rt = FaultRuntime::compile(&never, &ring(3), &seeds());
        for _ in 0..10 {
            assert_eq!(rt.on_send(0, 0, 1, 0.0), SendFate::Deliver { stretch: 1.0 });
        }
        assert_eq!(rt.stats.dropped_random, 0);
    }

    #[test]
    fn drop_rules_compound_per_edge() {
        let plan = FaultPlan::new()
            .drop(EdgeSelector::Edges(vec![0]), 0.5)
            .drop(EdgeSelector::Edges(vec![0]), 0.5);
        let rt = FaultRuntime::compile(&plan, &ring(3), &seeds());
        assert!((rt.drop_p[0] - 0.75).abs() < 1e-12);
        assert_eq!(rt.drop_p[1], 0.0);
    }

    #[test]
    fn storms_stretch_and_compound() {
        let plan = FaultPlan::new()
            .delay_storm(EdgeSelector::All, 1.0, 3.0, 2.0)
            .delay_storm(EdgeSelector::Edges(vec![0]), 2.0, 4.0, 5.0);
        let mut rt = FaultRuntime::compile(&plan, &ring(3), &seeds());
        assert_eq!(rt.on_send(0, 0, 1, 0.5), SendFate::Deliver { stretch: 1.0 });
        assert_eq!(rt.on_send(0, 0, 1, 1.5), SendFate::Deliver { stretch: 2.0 });
        assert_eq!(
            rt.on_send(0, 0, 1, 2.5),
            SendFate::Deliver { stretch: 10.0 }
        );
        assert_eq!(rt.on_send(1, 1, 2, 2.5), SendFate::Deliver { stretch: 2.0 });
        assert_eq!(rt.on_send(0, 0, 1, 3.5), SendFate::Deliver { stretch: 5.0 });
        assert_eq!(rt.stats.storm_deliveries, 4);
    }

    #[test]
    fn fault_stats_dropped_sums_losses() {
        let stats = FaultStats {
            dropped_crash: 2,
            dropped_partition: 3,
            dropped_random: 5,
            ..FaultStats::default()
        };
        assert_eq!(stats.dropped(), 10);
        assert_eq!(FaultStats::default().dropped(), 0);
    }

    #[test]
    fn outcome_class_names() {
        assert_eq!(OutcomeClass::Completed.as_str(), "completed");
        assert_eq!(OutcomeClass::Stalled.to_string(), "stalled");
        assert_eq!(OutcomeClass::WrongLeader.as_str(), "wrong-leader");
        assert_eq!(OutcomeClass::Decided.as_str(), "decided");
        assert_eq!(
            OutcomeClass::AgreementViolation.to_string(),
            "agreement-violation"
        );
        assert_eq!(
            OutcomeClass::ValidityViolation.as_str(),
            "validity-violation"
        );
    }

    #[test]
    fn outcome_class_violations_are_exactly_the_incorrect_results() {
        let violations: Vec<_> = OutcomeClass::ALL
            .into_iter()
            .filter(|c| c.is_violation())
            .collect();
        assert_eq!(
            violations,
            vec![
                OutcomeClass::WrongLeader,
                OutcomeClass::AgreementViolation,
                OutcomeClass::ValidityViolation,
            ]
        );
    }
}
