//! Deterministic parallel execution of a **single** simulation.
//!
//! [`Network::run_sharded`] splits the node space into `shards` contiguous
//! ranges (from [`NetworkBuilder::shards`](crate::NetworkBuilder::shards)),
//! gives each its own event queue, and advances all of them in
//! **conservative time windows** — the classical null-message-free variant
//! of conservative parallel discrete-event simulation:
//!
//! 1. Every edge `e` has a static *lookahead* `λ_e = min_delay(e) ·
//!    min_stretch(e) + min_proc`, a lower bound on the latency of any
//!    message it can ever carry
//!    ([`min_delay`](crate::delay::DelayModel::min_delay), shrunk by
//!    sub-unity delay-storm factors, plus the processing model's own
//!    bound).
//! 2. A shard whose earliest pending event is at `t_next` cannot cause a
//!    cross-shard arrival before `t_next + λ_out`, where `λ_out` is the
//!    minimum lookahead over its outgoing cross-shard edges.
//! 3. The window end is `W = min over shards of (t_next + λ_out)`; every
//!    shard may process all events strictly before `W` in parallel without
//!    ever seeing a message from the current window arrive "in its past".
//!
//! Cross-shard sends are buffered in the sending shard's outbox during the
//! window and routed into the destination queue at the barrier. Their
//! ordering keys are a pure function of event identity (edge id plus the
//! per-edge send sequence), so insertion order is irrelevant and every
//! shard pops the exact event subsequence the sequential run would.
//!
//! ## Zero lookahead
//!
//! Unbounded-from-below delay models (e.g. exponential) have
//! `min_delay() == 0`, collapsing the window to nothing. The executor then
//! degenerates gracefully: it finds the globally earliest `(time, key)`
//! across shards and steps that single shard once — serial, but still
//! exact. Runs mix both modes freely (deterministic delays on some edges,
//! heavy-tailed on others).
//!
//! ## Fidelity and fallback
//!
//! The windowed pass is **byte-identical** to the sequential run by
//! construction: every random stream is keyed by node or edge id (never by
//! shard count), per-edge state (FIFO clamp, send sequence, drop stream)
//! lives with the source shard, and the per-event ordering key reproduces
//! the sequential pop order. Three situations cannot be reproduced
//! mid-window and fall back to the classic sequential loop on a pristine
//! clone of the network (so the result is *still* identical):
//!
//! * a protocol requests a stop inside a parallel window (other shards
//!   have already raced past the stop point),
//! * the event budget is exhausted strictly inside a window,
//! * a scheduling adversary is installed (it observes global node heat on
//!   every send); this delegates up front.
//!
//! Telemetry recording is **not** one of these cases: each shard records
//! into an unbounded window-local buffer, and at every barrier the buffers
//! are merged into the master recorder in `(time, key, sub)` order — the
//! exact order the sequential run would have emitted — so traces (and the
//! histograms derived from them) are byte-identical at any shard count.
//!
//! [`ShardTiming`] on the returned network records windows, degenerate
//! single-steps, per-shard busy time, and the critical path, so harnesses
//! on small hosts can report the *modelled* speedup `Σ busy /
//! critical_path` alongside the wall clock.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use abe_sim::{QueueStats, RunLimits, RunOutcome, SimTime, Simulation};
use abe_telemetry::{merge_chunks, RunRecorder};

use crate::adversary::AdversaryStats;
use crate::fault::FaultRuntime;
use crate::net::{
    event_key, ChannelState, NetEvent, Network, NetworkReport, NodeSlot, ShardTiming, KIND_CRASH,
    KIND_RECOVER, KIND_START,
};
use crate::protocol::Protocol;
use crate::topology::{edge_id_from_raw, Topology};

/// Below this many total pending events a window is executed on the
/// calling thread (spawning is pure overhead); results are identical
/// either way.
const SERIAL_WINDOW_THRESHOLD: usize = 4096;

/// One shard: a partition of the network driven by its own simulation.
struct Shard<P: Protocol> {
    sim: Simulation<Network<P>>,
    /// Minimum lookahead over outgoing cross-shard edges (`∞` if none).
    lookahead: f64,
    /// Owned node range `lo..hi` (global ids).
    lo: u32,
    hi: u32,
    /// Busy nanoseconds accumulated across windows and single-steps.
    busy_nanos: u64,
}

impl<P> Network<P>
where
    P: Protocol + Clone + Send,
    P::Message: Send,
{
    /// Runs the network like [`Network::run`], but partitioned across the
    /// configured shard count (see
    /// [`NetworkBuilder::shards`](crate::NetworkBuilder::shards)) and
    /// advanced in conservative time windows executed in parallel.
    ///
    /// The returned [`NetworkReport`] — outcome, end time, event count,
    /// message counters, fault statistics, queue telemetry — is equal to
    /// the sequential run's for every shard count; see the
    /// [module docs](crate::shard) for why — including any recorded
    /// trace, which is merged back into global `(time, key, sub)` order at
    /// every window barrier. Runs that cannot be
    /// parallelised faithfully (installed adversary, a
    /// mid-window stop or event-budget exhaustion) are re-run sequentially
    /// on a pristine copy, preserving the guarantee at the cost of the
    /// speedup; [`Network::shard_timing`] reports whether that happened.
    pub fn run_sharded(self, limits: RunLimits) -> (NetworkReport, Network<P>) {
        let n = self.topo.node_count();
        let shards = self.shards.min(n).max(1);
        // Delegate whole-run observers (and trivial shard counts) to the
        // sequential loop: an adversary reads global node heat per send.
        // Telemetry recording does NOT delegate — shard-local window
        // buffers are merged at each barrier (see the module docs).
        if shards <= 1 || self.adversary.is_some() {
            return self.run(limits);
        }
        let pristine = self.clone();
        match run_windowed(self, shards, limits) {
            Ok(done) => done,
            Err(mut timing) => {
                // The windowed pass aborted (stop or budget overshoot
                // mid-window): discard it and replay sequentially from the
                // pristine clone — identical to `run` by construction.
                timing.fell_back = true;
                let (report, mut net) = pristine.run(limits);
                net.timing = Some(timing);
                (report, net)
            }
        }
    }
}

/// Shard index owning global node `node`, given the `shards + 1` range
/// bounds.
#[inline]
fn shard_of(node: u32, bounds: &[u32]) -> usize {
    bounds.partition_point(|&b| b <= node) - 1
}

/// The windowed parallel pass. `Err(timing)` means the pass aborted and the
/// caller must replay sequentially.
fn run_windowed<P>(
    net: Network<P>,
    shards: u32,
    limits: RunLimits,
) -> Result<(NetworkReport, Network<P>), ShardTiming>
where
    P: Protocol + Clone + Send,
    P::Message: Send,
{
    let requested = net.shards;
    let topo = Arc::clone(&net.topo);
    let n = topo.node_count();
    let bounds: Vec<u32> = (0..=shards)
        .map(|s| (u64::from(s) * u64::from(n) / u64::from(shards)) as u32)
        .collect();
    let (mut parts, mut master) = partition(net, &bounds);

    let mut timing = ShardTiming {
        shards,
        ..ShardTiming::default()
    };
    let mut cum: u64 = 0;

    let outcome = loop {
        // ---- barrier: pick the next window (or the run outcome) ----
        let mut min_next: Option<(SimTime, u64, usize)> = None;
        let mut w_end = f64::INFINITY;
        for (i, sh) in parts.iter().enumerate() {
            if let Some((t, k)) = sh.sim.peek_time_key() {
                if min_next.is_none_or(|(mt, mk, _)| (t, k) < (mt, mk)) {
                    min_next = Some((t, k, i));
                }
                let cap = t.as_secs() + sh.lookahead;
                if cap < w_end {
                    w_end = cap;
                }
            }
        }
        // Outcome checks mirror the sequential loop's priority order:
        // quiescence beats MaxTime beats MaxEvents (see `Simulation::run`).
        let Some((t_min, _, i_min)) = min_next else {
            break RunOutcome::Quiescent;
        };
        if let Some(max_time) = limits.max_time {
            if t_min > max_time {
                break RunOutcome::MaxTime;
            }
        }
        if let Some(max_events) = limits.max_events {
            // `cum > max_events` is impossible here: overshoot aborts
            // right after the window that caused it.
            if cum >= max_events {
                break RunOutcome::MaxEvents;
            }
        }

        if w_end > t_min.as_secs() {
            // ---- parallel window: every shard runs to the horizon ----
            timing.windows += 1;
            let pending: usize = parts.iter().map(|sh| sh.sim.pending()).sum();
            let stopped = if pending < SERIAL_WINDOW_THRESHOLD {
                let mut stopped = false;
                let mut slowest = 0u64;
                for sh in parts.iter_mut() {
                    let (nanos, stop) = run_window(sh, w_end, limits.max_time);
                    slowest = slowest.max(nanos);
                    stopped |= stop;
                }
                timing.critical_path_nanos += slowest;
                stopped
            } else {
                let results = std::thread::scope(|scope| {
                    let handles: Vec<_> = parts
                        .iter_mut()
                        .map(|sh| scope.spawn(move || run_window(sh, w_end, limits.max_time)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect::<Vec<_>>()
                });
                let slowest = results.iter().map(|&(nanos, _)| nanos).max().unwrap_or(0);
                timing.critical_path_nanos += slowest;
                results.iter().any(|&(_, stop)| stop)
            };
            cum = parts.iter().map(|sh| sh.sim.events_processed()).sum();
            if stopped {
                // A stop inside a parallel window: sibling shards already
                // processed events the sequential run never would have.
                return Err(timing);
            }
            if let Some(max_events) = limits.max_events {
                if cum > max_events {
                    return Err(timing);
                }
            }
            collect_trace(&mut parts, master.as_deref_mut());
            route_outboxes(&mut parts, &topo, &bounds);
        } else {
            // ---- zero lookahead: step the globally earliest event ----
            timing.single_steps += 1;
            let sh = &mut parts[i_min];
            let started = Instant::now();
            sh.sim.step();
            let nanos = started.elapsed().as_nanos() as u64;
            sh.busy_nanos += nanos;
            timing.critical_path_nanos += nanos;
            cum += 1;
            collect_trace(&mut parts, master.as_deref_mut());
            if parts[i_min].sim.stop_requested() {
                // Exact: this was the globally next event and nothing else
                // ran after it — precisely the sequential stop state.
                break RunOutcome::Stopped;
            }
            route_outboxes(&mut parts, &topo, &bounds);
        }
    };

    timing.busy_nanos = parts.iter().map(|sh| sh.busy_nanos).collect();
    Ok(merge(parts, outcome, cum, requested, timing, master))
}

/// Runs one shard up to (exclusive) the window horizon, bounded by the time
/// limit. Returns busy nanoseconds and whether a stop was requested.
fn run_window<P: Protocol>(
    shard: &mut Shard<P>,
    w_end: f64,
    max_time: Option<SimTime>,
) -> (u64, bool) {
    let started = Instant::now();
    let mut stopped = false;
    loop {
        match shard.sim.peek_time_key() {
            None => break,
            Some((t, _)) => {
                if t.as_secs() >= w_end {
                    break;
                }
                if max_time.is_some_and(|mt| t > mt) {
                    break;
                }
            }
        }
        shard.sim.step();
        if shard.sim.stop_requested() {
            stopped = true;
            break;
        }
    }
    let nanos = started.elapsed().as_nanos() as u64;
    shard.busy_nanos += nanos;
    (nanos, stopped)
}

/// Drains every shard's outbox and schedules each cross-shard delivery into
/// its destination shard's queue. Keys make insertion order irrelevant.
fn route_outboxes<P: Protocol>(parts: &mut [Shard<P>], topo: &Topology, bounds: &[u32]) {
    let mut moved = Vec::new();
    for sh in parts.iter_mut() {
        let outbox = &mut sh.sim.world_mut().outbox;
        if !outbox.is_empty() {
            moved.append(outbox);
        }
    }
    for (at, key, edge, size, msg) in moved {
        let dst = topo.edge(edge_id_from_raw(edge)).dst.index() as u32;
        let dst_shard = shard_of(dst, bounds);
        parts[dst_shard]
            .sim
            .prime_keyed(at, key, NetEvent::Deliver { edge, size, msg });
    }
}

/// Drains every shard's window-local trace buffer and merges the records
/// into the master recorder in `(time, key, sub)` order — the order the
/// sequential run would have produced them in. A no-op when recording is
/// disabled.
///
/// The merge is exact because this runs at a window barrier: every record
/// a shard will ever emit at a time inside the finished window has already
/// been emitted (cross-shard arrivals land at least one lookahead later).
fn collect_trace<P: Protocol>(parts: &mut [Shard<P>], master: Option<&mut RunRecorder>) {
    let Some(master) = master else { return };
    let chunks: Vec<_> = parts
        .iter_mut()
        .map(|sh| {
            sh.sim
                .world_mut()
                .rec
                .as_deref_mut()
                .map(RunRecorder::drain)
                .unwrap_or_default()
        })
        .collect();
    merge_chunks(chunks, |rec| master.absorb_merged(rec));
}

/// Splits a full network into per-shard partitions, each primed with its
/// own nodes' start events and crash schedule. Returns the shards plus the
/// master recorder (if recording is enabled); each shard gets an unbounded
/// window-local buffer that [`collect_trace`] merges back into the master
/// at every barrier.
fn partition<P>(net: Network<P>, bounds: &[u32]) -> (Vec<Shard<P>>, Option<Box<RunRecorder>>)
where
    P: Protocol + Clone,
{
    let shards = bounds.len() - 1;
    let Network {
        topo,
        reply_ports,
        mut nodes,
        channels,
        processing,
        proc_rng,
        fifo,
        tick_interval,
        counters,
        messages_sent,
        messages_delivered,
        ticks,
        payload_bytes,
        rec: master,
        faults,
        adversary: _,
        shards: requested,
        shard_lo: _,
        edge_ranks: _,
        outbox: _,
        timing: _,
    } = net;

    // Split the node vector into contiguous chunks, back to front.
    let mut node_chunks: Vec<Vec<NodeSlot<P>>> = Vec::with_capacity(shards);
    for s in (0..shards).rev() {
        node_chunks.push(nodes.split_off(bounds[s] as usize));
    }
    node_chunks.reverse();

    // Each channel lives with its *source* shard (send-side state: delay
    // sampling, FIFO clamp, send sequence, drop stream); deliveries touch
    // only the destination node, not the channel. While walking the edges,
    // accumulate each shard's outgoing-cross-edge lookahead.
    let proc_min = processing.min_delay();
    let mut chan_chunks: Vec<Vec<ChannelState>> = (0..shards).map(|_| Vec::new()).collect();
    let mut rank_chunks: Vec<Vec<u32>> = (0..shards).map(|_| Vec::new()).collect();
    let mut lookahead = vec![f64::INFINITY; shards];
    for (e, ch) in channels.into_iter().enumerate() {
        let edge = topo.edge(edge_id_from_raw(e as u32));
        let src_shard = shard_of(edge.src.index() as u32, bounds);
        let dst_shard = shard_of(edge.dst.index() as u32, bounds);
        if src_shard != dst_shard {
            let lam = ch.delay.min_delay() * faults.min_stretch(e) + proc_min;
            if lam < lookahead[src_shard] {
                lookahead[src_shard] = lam;
            }
        }
        chan_chunks[src_shard].push(ch);
        rank_chunks[src_shard].push(e as u32);
    }

    let crash_windows = faults.crash_windows().to_vec();
    let mut parts = Vec::with_capacity(shards);
    let mut node_chunks = node_chunks.into_iter();
    let mut chan_chunks = chan_chunks.into_iter();
    let mut rank_chunks = rank_chunks.into_iter();
    let mut baseline = Some((
        counters,
        messages_sent,
        messages_delivered,
        ticks,
        payload_bytes,
    ));
    for s in 0..shards {
        let (lo, hi) = (bounds[s], bounds[s + 1]);
        // Shard 0 inherits the pre-run accumulators (normally zero; kept
        // so totals remain lifetime totals, exactly like `run`).
        let (counters, sent, delivered, ticks, payload_bytes) =
            baseline.take().unwrap_or((BTreeMap::new(), 0, 0, 0, 0));
        let mut shard_faults = faults.clone();
        if s > 0 {
            shard_faults.stats = crate::fault::FaultStats::default();
        }
        let part = Network {
            topo: Arc::clone(&topo),
            reply_ports: Arc::clone(&reply_ports),
            nodes: node_chunks.next().expect("one node chunk per shard"),
            channels: chan_chunks.next().expect("one channel chunk per shard"),
            processing: Arc::clone(&processing),
            proc_rng: proc_rng.clone(),
            fifo,
            tick_interval,
            counters,
            messages_sent: sent,
            messages_delivered: delivered,
            ticks,
            payload_bytes,
            rec: master.as_ref().map(|m| Box::new(m.window_buffer())),
            faults: shard_faults,
            adversary: None,
            shards: requested,
            shard_lo: lo,
            edge_ranks: Some(rank_chunks.next().expect("one rank chunk per shard")),
            outbox: Vec::new(),
            timing: None,
        };
        let mut sim = Simulation::new(part);
        for i in lo..hi {
            sim.prime_keyed(
                SimTime::ZERO,
                event_key(KIND_START, i, 0),
                NetEvent::Start(i),
            );
        }
        // Crash windows keep their *global* enumeration index as the key
        // sequence so keys match the sequential run's exactly.
        for (w_idx, w) in crash_windows.iter().enumerate() {
            if w.node < lo || w.node >= hi {
                continue;
            }
            let seq = w_idx as u64;
            sim.prime_keyed(
                SimTime::from_secs(w.at),
                event_key(KIND_CRASH, w.node, seq),
                NetEvent::Crash(w.node),
            );
            if let Some(recover_at) = w.recover_at {
                sim.prime_keyed(
                    SimTime::from_secs(recover_at),
                    event_key(KIND_RECOVER, w.node, seq),
                    NetEvent::Recover(w.node),
                );
            }
        }
        parts.push(Shard {
            sim,
            lookahead: lookahead[s],
            lo,
            hi,
            busy_nanos: 0,
        });
    }
    (parts, master)
}

/// Reassembles the partitions into one network plus the run report, the
/// exact mirror of what `Network::run` produces.
fn merge<P: Protocol>(
    parts: Vec<Shard<P>>,
    outcome: RunOutcome,
    events_processed: u64,
    requested_shards: u32,
    timing: ShardTiming,
    master: Option<Box<RunRecorder>>,
) -> (NetworkReport, Network<P>) {
    let end_time = parts
        .iter()
        .map(|sh| sh.sim.now())
        .max()
        .unwrap_or(SimTime::ZERO);
    let mut queue_stats = QueueStats::default();
    for sh in &parts {
        queue_stats.merge(sh.sim.queue_stats());
    }

    let ranges: Vec<(u32, u32)> = parts.iter().map(|sh| (sh.lo, sh.hi)).collect();
    let mut worlds: Vec<Network<P>> = parts.into_iter().map(|sh| sh.sim.into_world()).collect();

    let edge_count = worlds[0].topo.edge_count();
    let mut channel_slots: Vec<Option<ChannelState>> = (0..edge_count).map(|_| None).collect();
    let mut nodes = Vec::with_capacity(worlds[0].topo.node_count() as usize);
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut messages_sent = 0u64;
    let mut messages_delivered = 0u64;
    let mut ticks = 0u64;
    let mut payload_bytes = 0u64;

    // Fault state: start from shard 0's runtime (it carries the baseline
    // stats), fold in sibling stats, and adopt each node's down-state from
    // its owner shard.
    let mut faults: Option<FaultRuntime> = None;
    for (s, world) in worlds.iter_mut().enumerate() {
        nodes.append(&mut world.nodes);
        let ranks = world
            .edge_ranks
            .take()
            .expect("partitions track edge ranks");
        for (rank, ch) in ranks.into_iter().zip(world.channels.drain(..)) {
            channel_slots[rank as usize] = Some(ch);
        }
        for (name, amount) in std::mem::take(&mut world.counters) {
            *counters.entry(name).or_insert(0) += amount;
        }
        messages_sent += world.messages_sent;
        messages_delivered += world.messages_delivered;
        ticks += world.ticks;
        payload_bytes += world.payload_bytes;
        let (lo, hi) = ranges[s];
        match faults.as_mut() {
            None => faults = Some(world.faults.clone()),
            Some(merged) => {
                merged.stats.merge(&world.faults.stats);
                merged.adopt_down(&world.faults, lo as usize, hi as usize);
            }
        }
    }
    let faults = faults.expect("at least one shard");
    let channels: Vec<ChannelState> = channel_slots
        .into_iter()
        .map(|slot| slot.expect("every edge owned by exactly one shard"))
        .collect();

    let first = worlds.swap_remove(0);
    let mut net = Network {
        topo: first.topo,
        reply_ports: first.reply_ports,
        nodes,
        channels,
        processing: first.processing,
        proc_rng: first.proc_rng,
        fifo: first.fifo,
        tick_interval: first.tick_interval,
        counters,
        messages_sent,
        messages_delivered,
        ticks,
        payload_bytes,
        rec: master,
        faults,
        adversary: None,
        shards: requested_shards,
        shard_lo: 0,
        edge_ranks: None,
        outbox: Vec::new(),
        timing: Some(timing),
    };

    let report = NetworkReport {
        outcome,
        end_time,
        events_processed,
        messages_sent: net.messages_sent,
        messages_delivered: net.messages_delivered,
        in_flight: net.messages_sent - net.messages_delivered - net.faults.stats.dropped(),
        ticks: net.ticks,
        payload_bytes: net.payload_bytes,
        queue_stats,
        faults: net.faults.stats,
        adversary: AdversaryStats::default(),
        counters: std::mem::take(&mut net.counters),
        trace_records: net.rec.as_ref().map_or(0, |r| r.seen()),
        trace_dropped: net.rec.as_ref().map_or(0, |r| r.dropped()),
    };
    (report, net)
}

#[cfg(test)]
mod tests {
    use abe_sim::RunLimits;

    use crate::delay::{Deterministic, Exponential, Uniform};
    use crate::fault::{EdgeSelector, FaultPlan};
    use crate::protocol::{Ctx, InPort, OutPort, Protocol};
    use crate::{NetworkBuilder, Topology};

    /// Forwards a hop-counted token; initiators inject one each.
    #[derive(Debug, Clone)]
    struct Relay {
        initiator: bool,
        hops_left: u32,
        seen: u32,
    }

    impl Protocol for Relay {
        type Message = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if self.initiator {
                ctx.send(OutPort(0), self.hops_left);
            }
        }
        fn on_message(&mut self, _from: InPort, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.seen += 1;
            ctx.count("hops", 1);
            if msg > 0 {
                ctx.send(OutPort(0), msg - 1);
            }
        }
    }

    fn relay_builder(n: u32, seed: u64) -> NetworkBuilder {
        NetworkBuilder::new(Topology::unidirectional_ring(n).unwrap()).seed(seed)
    }

    fn relay_factory(i: usize) -> Relay {
        Relay {
            initiator: i.is_multiple_of(3),
            hops_left: 40,
            seen: 0,
        }
    }

    /// Sequential and sharded runs must produce equal reports and equal
    /// final protocol states.
    fn assert_equivalent(make: impl Fn() -> NetworkBuilder, limits: RunLimits) {
        let (seq_report, seq_net) = make().build(relay_factory).unwrap().run(limits);
        for shards in [2, 3, 8] {
            let (par_report, par_net) = make()
                .shards(shards)
                .build(relay_factory)
                .unwrap()
                .run_sharded(limits);
            assert_eq!(seq_report, par_report, "shards = {shards}");
            for i in 0..seq_net.topology().node_count() as usize {
                assert_eq!(seq_net.node(i).seen, par_net.node(i).seen, "node {i}");
            }
            let timing = par_net.shard_timing().expect("sharded run records timing");
            assert_eq!(timing.shards, shards.min(seq_net.topology().node_count()));
        }
    }

    #[test]
    fn windowed_run_matches_sequential_with_positive_lookahead() {
        assert_equivalent(
            || relay_builder(24, 11).delay(Uniform::new(0.5, 1.5).unwrap()),
            RunLimits::unbounded(),
        );
    }

    #[test]
    fn zero_lookahead_degenerates_to_exact_single_stepping() {
        assert_equivalent(
            || relay_builder(16, 5).delay(Exponential::from_mean(1.0).unwrap()),
            RunLimits::unbounded(),
        );
    }

    #[test]
    fn max_time_limit_matches_sequential() {
        assert_equivalent(
            || relay_builder(24, 3).delay(Uniform::new(0.5, 1.5).unwrap()),
            RunLimits::until(abe_sim::SimTime::from_secs(7.5)),
        );
    }

    #[test]
    fn faulty_runs_match_sequential() {
        let plan = || {
            FaultPlan::new()
                .crash_recover(2, 1.0, 4.0)
                .crash_stop(9, 3.0)
                .drop(EdgeSelector::All, 0.1)
                .delay_storm(EdgeSelector::All, 2.0, 5.0, 3.0)
        };
        assert_equivalent(
            || {
                relay_builder(24, 7)
                    .delay(Uniform::new(0.5, 1.5).unwrap())
                    .fault(plan())
            },
            RunLimits::unbounded(),
        );
    }

    #[test]
    fn deterministic_delay_ties_match_sequential() {
        assert_equivalent(
            || {
                relay_builder(20, 2)
                    .delay(Deterministic::new(1.0).unwrap())
                    .fifo(true)
            },
            RunLimits::unbounded(),
        );
    }

    #[test]
    fn event_budget_overshoot_falls_back_to_sequential() {
        let limits = RunLimits::events(97);
        let (seq_report, _) = relay_builder(24, 11)
            .delay(Uniform::new(0.5, 1.5).unwrap())
            .build(relay_factory)
            .unwrap()
            .run(limits);
        let (par_report, par_net) = relay_builder(24, 11)
            .delay(Uniform::new(0.5, 1.5).unwrap())
            .shards(4)
            .build(relay_factory)
            .unwrap()
            .run_sharded(limits);
        assert_eq!(seq_report, par_report);
        assert_eq!(par_report.outcome, abe_sim::RunOutcome::MaxEvents);
        assert_eq!(par_report.events_processed, 97);
        // Whether this hit a window boundary exactly or fell back, the
        // timing must say which.
        assert!(par_net.shard_timing().is_some());
    }

    /// A protocol that stops the network mid-flight: the sharded run must
    /// still match (via exact single-step stop or sequential fallback).
    #[test]
    fn stop_requests_match_sequential() {
        #[derive(Debug, Clone)]
        struct StopAfter {
            initiator: bool,
            seen: u32,
        }
        impl Protocol for StopAfter {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if self.initiator {
                    ctx.send(OutPort(0), ());
                }
            }
            fn on_message(&mut self, _from: InPort, _msg: (), ctx: &mut Ctx<'_, ()>) {
                self.seen += 1;
                if self.seen == 5 {
                    ctx.stop_network();
                } else {
                    ctx.send(OutPort(0), ());
                }
            }
        }
        let make = |shards: u32| {
            NetworkBuilder::new(Topology::unidirectional_ring(12).unwrap())
                .delay(Uniform::new(0.5, 1.5).unwrap())
                .seed(13)
                .shards(shards)
                .build(|i| StopAfter {
                    initiator: i == 0,
                    seen: 0,
                })
                .unwrap()
        };
        let (seq_report, _) = make(1).run(RunLimits::unbounded());
        let (par_report, _) = make(4).run_sharded(RunLimits::unbounded());
        assert_eq!(seq_report, par_report);
        assert!(par_report.outcome.is_stopped());
    }

    /// Traced sharded runs no longer delegate: per-shard window buffers
    /// merged at barriers must reproduce the sequential record stream
    /// exactly — same records, same `(time, key, sub)` stamps, same
    /// derived histograms.
    #[test]
    fn traced_runs_match_sequential_record_for_record() {
        use abe_telemetry::Recording;
        let make = || {
            relay_builder(24, 11)
                .delay(Uniform::new(0.5, 1.5).unwrap())
                .record(Recording::full().histograms(true))
        };
        let (seq_report, seq_net) = make()
            .build(relay_factory)
            .unwrap()
            .run(RunLimits::unbounded());
        assert!(seq_report.trace_records > 0);
        for shards in [2, 3, 8] {
            let (par_report, par_net) = make()
                .shards(shards)
                .build(relay_factory)
                .unwrap()
                .run_sharded(RunLimits::unbounded());
            assert_eq!(seq_report, par_report, "shards = {shards}");
            assert_eq!(par_report.trace_records, seq_report.trace_records);
            let seq_recs: Vec<_> = seq_net.trace().collect();
            let par_recs: Vec<_> = par_net.trace().collect();
            assert_eq!(seq_recs, par_recs, "shards = {shards}");
            assert_eq!(
                seq_net.telemetry().unwrap().histograms().unwrap().to_json(),
                par_net.telemetry().unwrap().histograms().unwrap().to_json(),
                "shards = {shards}"
            );
            // Recording must not force the sequential fallback.
            let timing = par_net.shard_timing().expect("traced run still shards");
            assert!(!timing.fell_back, "shards = {shards}");
        }
    }

    /// Same equivalence through the zero-lookahead single-step path and
    /// with faults injecting crash/drop records.
    #[test]
    fn traced_faulty_zero_lookahead_runs_match_sequential() {
        use abe_telemetry::Recording;
        let make = || {
            relay_builder(16, 5)
                .delay(Exponential::from_mean(1.0).unwrap())
                .fault(
                    FaultPlan::new()
                        .crash_recover(2, 1.0, 4.0)
                        .drop(EdgeSelector::All, 0.1),
                )
                .record(Recording::full())
        };
        let (seq_report, seq_net) = make()
            .build(relay_factory)
            .unwrap()
            .run(RunLimits::unbounded());
        let (par_report, par_net) = make()
            .shards(4)
            .build(relay_factory)
            .unwrap()
            .run_sharded(RunLimits::unbounded());
        assert_eq!(seq_report, par_report);
        let seq_recs: Vec<_> = seq_net.trace().collect();
        let par_recs: Vec<_> = par_net.trace().collect();
        assert_eq!(seq_recs, par_recs);
    }

    #[test]
    fn adversary_runs_delegate_to_sequential() {
        use crate::adversary::{Adversary, AdversaryPlan, SendView};
        use abe_sim::Xoshiro256PlusPlus;

        /// Always proposes the full per-edge budget.
        #[derive(Debug, Clone)]
        struct Greedy;
        impl Adversary for Greedy {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn delay(&mut self, send: &SendView<'_>, _rng: &mut Xoshiro256PlusPlus) -> f64 {
                send.budget
            }
            fn box_clone(&self) -> Box<dyn Adversary> {
                Box::new(self.clone())
            }
        }

        let make = |shards: u32| {
            relay_builder(12, 1)
                .delay(Exponential::from_mean(1.0).unwrap())
                .adversary(AdversaryPlan::new(1.0, Greedy).unwrap())
                .shards(shards)
                .build(relay_factory)
                .unwrap()
        };
        let (seq_report, _) = make(1).run(RunLimits::unbounded());
        let (par_report, par_net) = make(4).run_sharded(RunLimits::unbounded());
        assert_eq!(seq_report, par_report);
        // Delegated runs carry no shard timing.
        assert!(par_net.shard_timing().is_none());
    }
}
