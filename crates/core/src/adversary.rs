//! Budgeted scheduling adversaries — the *adversarial* half of Definition 1.
//!
//! The paper defines message delays as "chosen by an adversary, subject to
//! a known bound on the **expected** delay". Everything else in this
//! workspace samples delays obliviously from a fixed distribution; this
//! module is the hook through which a strategy may *choose* them instead:
//!
//! * an [`Adversary`] intercepts every send at delay-sampling time and
//!   returns the channel delay it wants (stretch, burst, or reorder —
//!   non-FIFO delivery is the default, so inversions are legal);
//! * a [`BudgetAuditor`] tracks the **per-edge empirical mean** of the
//!   delays actually granted (one [`abe_stats::Online`] accumulator per
//!   edge) and clamps any proposal that would push an edge's mean above
//!   the configured Definition-1 bound `δ` — so every adversarial run is
//!   still a *legal* ABE execution, by construction;
//! * an adversary may be **adaptive**: each send carries a [`SendView`]
//!   exposing the edge, the current virtual time, the obliviously sampled
//!   delay, the remaining per-edge allowance, and a narrow protocol view
//!   ([`SendView::heat`], fed by [`Protocol::heat`](crate::Protocol::heat))
//!   — enough to target the current token-holder of an election or the
//!   frontier of a wave, and nothing more.
//!
//! ## Determinism
//!
//! Adversary randomness draws from a dedicated `"adversary"`
//! [`SeedStream`](abe_sim::SeedStream) child of the builder's master seed.
//! An **empty plan consumes no draws and schedules nothing**: a network
//! built with [`AdversaryPlan::none`] is bit-identical to one built
//! without calling [`NetworkBuilder::adversary`](crate::NetworkBuilder::adversary)
//! at all.
//!
//! ## Interplay with faults
//!
//! The adversary replaces the *channel* delay of messages that will be
//! delivered; fault-plan drops are decided first (and consume their own
//! stream), and delay storms multiply the adversary's granted delay
//! afterwards. The auditor bounds the adversary's choices only — storms
//! deliberately model bound violations and stay un-audited.
//!
//! Concrete strategies (oblivious swapper, heavy-tail burster, reorderer,
//! adaptive targeting) live in the `abe-adversary` crate; this module owns
//! the trait, the plan, and the enforcement so the runtime never depends
//! on any particular strategy.

use std::fmt;

use abe_sim::{SimDuration, Xoshiro256PlusPlus};
use abe_stats::Online;

use crate::error::InvalidParamError;

/// One intercepted send, as the adversary sees it.
///
/// Deliberately narrow: no message payloads, no protocol internals beyond
/// the coarse per-node [`heat`](Self::heat) — the adversary schedules, it
/// does not inspect state.
pub struct SendView<'a> {
    /// Index of the edge carrying the message (dense, in topology order).
    pub edge: u32,
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Virtual time of the send (seconds).
    pub now: f64,
    /// The delay the edge's oblivious model sampled for this message
    /// (seconds); returning it unchanged reproduces the oblivious run.
    pub sampled: f64,
    /// The configured Definition-1 bound `δ` on per-edge expected delay.
    pub budget: f64,
    /// The largest delay the auditor would grant un-clamped right now:
    /// `δ·(k+1) − Σ granted` for an edge with `k` prior sends. Always at
    /// least `budget`; grows when the adversary banks cheap deliveries.
    pub allowance: f64,
    pub(crate) heat: &'a dyn Fn(u32) -> u32,
    pub(crate) node_count: u32,
}

impl SendView<'_> {
    /// The [`Protocol::heat`](crate::Protocol::heat) of node `node` right
    /// now — the narrow protocol view for adaptive strategies (0 = cold).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn heat(&self, node: u32) -> u32 {
        assert!(node < self.node_count, "node {node} out of range");
        (self.heat)(node)
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }
}

impl fmt::Debug for SendView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SendView")
            .field("edge", &self.edge)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("now", &self.now)
            .field("sampled", &self.sampled)
            .field("budget", &self.budget)
            .field("allowance", &self.allowance)
            .finish()
    }
}

/// A scheduling adversary: chooses the channel delay of every send.
///
/// Implementations are stateful (`&mut self`) and may be adaptive (read
/// the [`SendView`]) or oblivious (ignore it). Returned delays are
/// **proposals**: the runtime's [`BudgetAuditor`] grants at most the
/// current per-edge allowance, so no strategy can break the Definition-1
/// bound — it can only waste its own clamped proposals.
pub trait Adversary: fmt::Debug + Send {
    /// Short stable strategy name (used in tables and JSON).
    fn name(&self) -> &'static str;

    /// Proposes the channel delay (seconds) for one send.
    ///
    /// `rng` is the dedicated `"adversary"` stream; using any other source
    /// of randomness would break run reproducibility. Non-finite or
    /// negative proposals are clamped to zero (and counted as clamps).
    fn delay(&mut self, send: &SendView<'_>, rng: &mut Xoshiro256PlusPlus) -> f64;

    /// Clones the strategy behind the object-safe interface (lets
    /// [`AdversaryPlan`] — and configs holding one — stay `Clone`).
    fn box_clone(&self) -> Box<dyn Adversary>;
}

impl Clone for Box<dyn Adversary> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Declarative adversary configuration for
/// [`NetworkBuilder::adversary`](crate::NetworkBuilder::adversary).
///
/// The default ([`AdversaryPlan::none`]) installs nothing and leaves the
/// simulation bit-identical to a build without any plan.
#[derive(Debug, Clone, Default)]
pub struct AdversaryPlan {
    strategy: Option<Box<dyn Adversary>>,
    budget: f64,
}

impl AdversaryPlan {
    /// The empty plan: no interception, no random draws, no telemetry.
    pub fn none() -> Self {
        Self::default()
    }

    /// Installs `strategy` under the per-edge expected-delay bound
    /// `budget` (the `δ` of Definition 1, in seconds).
    ///
    /// # Errors
    ///
    /// Returns an error unless `budget` is finite and positive.
    pub fn new(budget: f64, strategy: impl Adversary + 'static) -> Result<Self, InvalidParamError> {
        if !(budget.is_finite() && budget > 0.0) {
            return Err(InvalidParamError::new(
                "budget",
                "must be finite and positive",
                budget,
            ));
        }
        Ok(Self {
            strategy: Some(Box::new(strategy)),
            budget,
        })
    }

    /// Whether the plan installs nothing.
    pub fn is_empty(&self) -> bool {
        self.strategy.is_none()
    }

    /// The configured Definition-1 bound, or `None` for an empty plan.
    pub fn budget(&self) -> Option<f64> {
        self.strategy.as_ref().map(|_| self.budget)
    }

    /// The installed strategy's name, or `None` for an empty plan.
    pub fn strategy_name(&self) -> Option<&'static str> {
        self.strategy.as_ref().map(|s| s.name())
    }

    /// Compiles the plan into runtime state; `rng` must come from the
    /// builder's `"adversary"` seed stream. Returns `None` for an empty
    /// plan so the dispatch hot path stays branch-cheap.
    pub(crate) fn compile(
        &self,
        edge_count: usize,
        rng: Xoshiro256PlusPlus,
    ) -> Option<AdversaryRuntime> {
        self.strategy.as_ref().map(|strategy| AdversaryRuntime {
            strategy: strategy.clone(),
            auditor: BudgetAuditor::new(self.budget, edge_count),
            rng,
            intercepted: 0,
        })
    }
}

/// Online enforcement of the Definition-1 bound over adversary proposals.
///
/// Keeps one [`Online`] accumulator of **granted** delays per edge. A
/// proposal is granted un-clamped iff accepting it keeps that edge's
/// empirical mean at or below the budget; otherwise it is clamped down to
/// the exact allowance (never below zero). The invariant maintained after
/// every send: `mean(granted delays on edge e) ≤ budget` for every `e`.
#[derive(Debug, Clone)]
pub struct BudgetAuditor {
    budget: f64,
    edges: Vec<Online>,
    clamped: u64,
}

impl BudgetAuditor {
    /// An auditor for `edge_count` edges under per-edge bound `budget`.
    pub fn new(budget: f64, edge_count: usize) -> Self {
        Self {
            budget,
            edges: vec![Online::new(); edge_count],
            clamped: 0,
        }
    }

    /// The configured per-edge bound `δ`.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The largest delay `edge` can be granted right now without pushing
    /// its empirical mean past the budget: `δ·(k+1) − Σ granted`.
    ///
    /// By induction this is never below `δ` (a legal edge always has at
    /// least one full budget of headroom for its next send).
    pub fn allowance(&self, edge: usize) -> f64 {
        let acc = &self.edges[edge];
        self.budget * (acc.count() + 1) as f64 - acc.total()
    }

    /// Grants `proposed` on `edge`, clamping it into the legal range;
    /// returns the granted delay and records it in the edge's mean.
    pub fn admit(&mut self, edge: usize, proposed: f64) -> f64 {
        let allowance = self.allowance(edge);
        let granted = if proposed.is_nan() || proposed < 0.0 {
            self.clamped += 1;
            0.0
        } else if proposed > allowance {
            self.clamped += 1;
            allowance
        } else {
            proposed
        };
        self.edges[edge].push(granted);
        granted
    }

    /// Proposals clamped so far (rejected excesses and invalid values).
    pub fn clamp_count(&self) -> u64 {
        self.clamped
    }

    /// The largest per-edge empirical mean of granted delays (0 if no
    /// edge has seen a send). The headline auditor telemetry: must never
    /// exceed the budget beyond floating-point noise.
    pub fn max_edge_mean(&self) -> f64 {
        self.edges
            .iter()
            .filter(|e| e.count() > 0)
            .map(Online::mean)
            .fold(0.0, f64::max)
    }

    /// Edges whose empirical mean exceeds the budget beyond a relative
    /// `1e-9` floating-point tolerance. The enforced invariant: **always
    /// zero** (clamping is exact up to rounding).
    pub fn violations(&self) -> u64 {
        let bound = self.budget * (1.0 + 1e-9);
        self.edges
            .iter()
            .filter(|e| e.count() > 0 && e.mean() > bound)
            .count() as u64
    }
}

/// Auditor telemetry for one run, surfaced on
/// [`NetworkReport`](crate::NetworkReport); all zero when no adversary
/// was installed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdversaryStats {
    /// Sends intercepted by the adversary.
    pub intercepted: u64,
    /// Proposals clamped by the auditor.
    pub clamped: u64,
    /// Largest per-edge empirical mean of granted delays (seconds).
    pub max_edge_mean: f64,
    /// Edges whose empirical mean ended above the budget (must be 0).
    pub violations: u64,
}

/// The compiled, mutable runtime state of a plan inside a running
/// [`Network`](crate::Network).
#[derive(Clone)]
pub(crate) struct AdversaryRuntime {
    strategy: Box<dyn Adversary>,
    auditor: BudgetAuditor,
    rng: Xoshiro256PlusPlus,
    intercepted: u64,
}

impl AdversaryRuntime {
    /// Intercepts one send: consults the strategy, audits its proposal,
    /// and returns the granted channel delay.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn intercept(
        &mut self,
        edge: usize,
        src: u32,
        dst: u32,
        now: f64,
        sampled: SimDuration,
        heat: &dyn Fn(u32) -> u32,
        node_count: u32,
    ) -> SimDuration {
        let send = SendView {
            edge: edge as u32,
            src,
            dst,
            now,
            sampled: sampled.as_secs(),
            budget: self.auditor.budget(),
            allowance: self.auditor.allowance(edge),
            heat,
            node_count,
        };
        let proposed = self.strategy.delay(&send, &mut self.rng);
        let granted = self.auditor.admit(edge, proposed);
        self.intercepted += 1;
        SimDuration::from_secs(granted)
    }

    /// Final run telemetry.
    pub(crate) fn stats(&self) -> AdversaryStats {
        AdversaryStats {
            intercepted: self.intercepted,
            clamped: self.auditor.clamp_count(),
            max_edge_mean: self.auditor.max_edge_mean(),
            violations: self.auditor.violations(),
        }
    }
}

impl fmt::Debug for AdversaryRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdversaryRuntime")
            .field("strategy", &self.strategy.name())
            .field("budget", &self.auditor.budget())
            .field("intercepted", &self.intercepted)
            .field("clamped", &self.auditor.clamp_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abe_sim::SeedStream;

    /// Always proposes a fixed delay (test strategy).
    #[derive(Debug, Clone)]
    struct Constant(f64);

    impl Adversary for Constant {
        fn name(&self) -> &'static str {
            "constant"
        }
        fn delay(&mut self, _send: &SendView<'_>, _rng: &mut Xoshiro256PlusPlus) -> f64 {
            self.0
        }
        fn box_clone(&self) -> Box<dyn Adversary> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let plan = AdversaryPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.budget(), None);
        assert_eq!(plan.strategy_name(), None);
        let rng = SeedStream::new(0).stream("adversary", 0);
        assert!(plan.compile(4, rng).is_none());
    }

    #[test]
    fn plan_rejects_bad_budgets() {
        assert!(AdversaryPlan::new(0.0, Constant(1.0)).is_err());
        assert!(AdversaryPlan::new(-1.0, Constant(1.0)).is_err());
        assert!(AdversaryPlan::new(f64::NAN, Constant(1.0)).is_err());
        assert!(AdversaryPlan::new(f64::INFINITY, Constant(1.0)).is_err());
        let plan = AdversaryPlan::new(2.0, Constant(1.0)).unwrap();
        assert_eq!(plan.budget(), Some(2.0));
        assert_eq!(plan.strategy_name(), Some("constant"));
    }

    #[test]
    fn auditor_grants_within_budget_unclamped() {
        let mut a = BudgetAuditor::new(1.0, 2);
        for _ in 0..100 {
            assert_eq!(a.admit(0, 0.5), 0.5);
        }
        assert_eq!(a.clamp_count(), 0);
        assert!((a.max_edge_mean() - 0.5).abs() < 1e-12);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn auditor_clamps_excess_to_the_exact_allowance() {
        let mut a = BudgetAuditor::new(1.0, 1);
        // First send: allowance is exactly the budget.
        assert_eq!(a.allowance(0), 1.0);
        assert_eq!(a.admit(0, 10.0), 1.0);
        assert_eq!(a.clamp_count(), 1);
        // The edge sits exactly at the bound; next allowance is again δ.
        assert!((a.allowance(0) - 1.0).abs() < 1e-12);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn banking_cheap_sends_grows_the_allowance() {
        let mut a = BudgetAuditor::new(1.0, 1);
        for _ in 0..4 {
            assert_eq!(a.admit(0, 0.0), 0.0);
        }
        // Four banked budgets plus the new send's own.
        assert!((a.allowance(0) - 5.0).abs() < 1e-12);
        assert_eq!(a.admit(0, 5.0), 5.0);
        assert_eq!(a.clamp_count(), 0);
        // Mean is exactly at the bound: 5 / 5 = 1.
        assert!((a.max_edge_mean() - 1.0).abs() < 1e-12);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn invalid_proposals_are_clamped_to_zero() {
        let mut a = BudgetAuditor::new(1.0, 1);
        assert_eq!(a.admit(0, f64::NAN), 0.0);
        assert_eq!(a.admit(0, -3.0), 0.0);
        assert_eq!(a.admit(0, f64::INFINITY), 3.0); // allowance after 2 zeros
        assert_eq!(a.clamp_count(), 3);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn mean_never_exceeds_budget_under_greedy_spending() {
        // A strategy that always proposes f64::MAX is clamped to the
        // allowance every time; the per-edge mean must pin to the budget.
        let mut a = BudgetAuditor::new(2.5, 3);
        for i in 0..1000 {
            let edge = i % 3;
            let granted = a.admit(edge, f64::MAX);
            assert!(granted >= 2.5, "allowance dipped below the budget");
        }
        assert!(a.max_edge_mean() <= 2.5 * (1.0 + 1e-9));
        assert_eq!(a.violations(), 0);
        assert_eq!(a.clamp_count(), 1000);
    }

    #[test]
    fn stats_default_is_all_zero() {
        let s = AdversaryStats::default();
        assert_eq!(s.intercepted, 0);
        assert_eq!(s.clamped, 0);
        assert_eq!(s.max_edge_mean, 0.0);
        assert_eq!(s.violations, 0);
    }

    #[test]
    fn boxed_adversaries_clone() {
        let boxed: Box<dyn Adversary> = Box::new(Constant(0.25));
        let mut cloned = boxed.clone();
        let heat = |_: u32| 0u32;
        let send = SendView {
            edge: 0,
            src: 0,
            dst: 1,
            now: 0.0,
            sampled: 1.0,
            budget: 1.0,
            allowance: 1.0,
            heat: &heat,
            node_count: 2,
        };
        let mut rng = SeedStream::new(0).stream("adversary", 0);
        assert_eq!(cloned.delay(&send, &mut rng), 0.25);
        assert_eq!(send.node_count(), 2);
        assert_eq!(send.heat(1), 0);
        assert!(format!("{send:?}").contains("edge"));
    }
}
