//! Fluent construction of [`Network`]s.
//!
//! The builder owns every knob of the model — topology, delay model(s),
//! clock population, processing model, FIFO-ness, master seed — and
//! optionally a declared [`NetworkClass`] that the configuration is
//! validated against at [`build`](NetworkBuilder::build) time, so an
//! experiment cannot silently hand an ABE algorithm a network stronger or
//! weaker than claimed.

use std::fmt;
use std::sync::Arc;

use abe_sim::SeedStream;
use abe_telemetry::Recording;

use crate::adversary::AdversaryPlan;
use crate::class::NetworkClass;
use crate::clock::ClockSpec;
use crate::delay::{DelayModel, Deterministic, Exponential, SharedDelay};
use crate::error::BuildError;
use crate::fault::{FaultPlan, FaultRuntime};
use crate::net::Network;
use crate::protocol::Protocol;
use crate::topology::Topology;

/// Builder for [`Network`].
///
/// # Examples
///
/// ```
/// use abe_core::{Ctx, InPort, NetworkBuilder, OutPort, Protocol, Topology};
/// use abe_core::delay::Exponential;
/// use abe_sim::RunLimits;
///
/// #[derive(Debug)]
/// struct Echo;
/// impl Protocol for Echo {
///     type Message = u32;
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
///         ctx.send(OutPort(0), 1);
///     }
///     fn on_message(&mut self, _from: InPort, msg: u32, ctx: &mut Ctx<'_, u32>) {
///         if msg < 5 {
///             ctx.send(OutPort(0), msg + 1);
///         }
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = NetworkBuilder::new(Topology::unidirectional_ring(3)?)
///     .delay(Exponential::from_mean(1.0)?)
///     .seed(7)
///     .build(|_| Echo)?;
/// let (report, _net) = net.run(RunLimits::unbounded());
/// assert!(report.outcome.is_quiescent());
/// assert_eq!(report.messages_sent, report.messages_delivered);
/// # Ok(())
/// # }
/// ```
pub struct NetworkBuilder {
    topo: Topology,
    delay: SharedDelay,
    edge_delays: Option<Vec<SharedDelay>>,
    clocks: ClockSpec,
    processing: SharedDelay,
    fifo: bool,
    seed: u64,
    tick_interval: f64,
    class: Option<NetworkClass>,
    record: Option<Recording>,
    fault: FaultPlan,
    adversary: AdversaryPlan,
    shards: u32,
}

impl NetworkBuilder {
    /// Starts a builder for the given topology with defaults:
    /// exponential delay of mean 1, perfect clocks, zero processing time,
    /// non-FIFO channels, seed 0, tick interval 1 local unit.
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            delay: Arc::new(Exponential::from_mean(1.0).expect("1.0 is a valid mean")),
            edge_delays: None,
            clocks: ClockSpec::perfect(),
            processing: Arc::new(Deterministic::zero()),
            fifo: false,
            seed: 0,
            tick_interval: 1.0,
            class: None,
            record: None,
            fault: FaultPlan::new(),
            adversary: AdversaryPlan::none(),
            shards: 1,
        }
    }

    /// Sets the shard count used by [`Network::run_sharded`]: the node
    /// space is split into `shards` contiguous ranges, each with its own
    /// event queue, advanced in conservative time windows (see the
    /// [`shard`](crate::shard) module docs). `1` (the default) runs
    /// sequentially; the count is clamped to the node count.
    ///
    /// Shard count never influences random streams — every stream is
    /// keyed by node or edge id — so any shard count produces a
    /// [`NetworkReport`](crate::NetworkReport) equal to the sequential
    /// one.
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the delay model used by every edge.
    pub fn delay(mut self, model: impl DelayModel + 'static) -> Self {
        self.delay = Arc::new(model);
        self
    }

    /// Sets a shared delay model used by every edge.
    pub fn delay_shared(mut self, model: SharedDelay) -> Self {
        self.delay = model;
        self
    }

    /// Sets per-edge delay models (heterogeneous links).
    ///
    /// The list must have exactly one entry per topology edge, in edge-id
    /// order; validated at build time.
    pub fn edge_delays(mut self, models: Vec<SharedDelay>) -> Self {
        self.edge_delays = Some(models);
        self
    }

    /// Sets the clock population specification.
    pub fn clocks(mut self, spec: ClockSpec) -> Self {
        self.clocks = spec;
        self
    }

    /// Sets the local-event processing model (the `γ` of Definition 1).
    pub fn processing(mut self, model: impl DelayModel + 'static) -> Self {
        self.processing = Arc::new(model);
        self
    }

    /// Enables FIFO delivery per edge (default: non-FIFO, as the paper's
    /// election algorithm permits arbitrary reordering).
    pub fn fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Sets the master seed; all node/channel/clock streams derive from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the local-clock interval between ticks (in local seconds).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not finite and positive.
    #[track_caller]
    pub fn tick_interval(mut self, interval: f64) -> Self {
        assert!(
            interval.is_finite() && interval > 0.0,
            "tick interval must be finite and positive, got {interval}"
        );
        self.tick_interval = interval;
        self
    }

    /// Declares the network class this configuration must satisfy.
    pub fn class(mut self, class: NetworkClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Installs a fault-injection plan (crashes, drops, partitions, delay
    /// storms); validated against the topology at build time.
    ///
    /// The default (empty) plan injects nothing and leaves the simulation
    /// bit-identical to one built without this call.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Installs a budgeted scheduling adversary (see
    /// [`adversary`](crate::adversary)): the strategy chooses every
    /// channel delay, audited online against the plan's per-edge
    /// expected-delay bound. Composes with [`fault`](Self::fault) plans
    /// (drops decided first, storms stretch the granted delay).
    ///
    /// The auditor bounds the **granted** delays; with
    /// [`fifo(true)`](Self::fifo) the per-edge ordering clamp may still
    /// push an arrival later than granted (so delivered delays can
    /// exceed the audited means), and it neutralises reordering
    /// strategies by construction — adversarial FIFO violation is only
    /// meaningful on the default non-FIFO channels.
    ///
    /// The default (empty) plan intercepts nothing and leaves the
    /// simulation bit-identical to one built without this call.
    pub fn adversary(mut self, plan: AdversaryPlan) -> Self {
        self.adversary = plan;
        self
    }

    /// Enables execution tracing, retaining at most `capacity` event
    /// records (default 0 = disabled). Read back via
    /// [`Network::trace`](crate::Network::trace).
    ///
    /// Sugar for [`record`](Self::record) with
    /// `Recording::ring(capacity).payloads(true)`; `0` disables recording
    /// entirely.
    pub fn trace_capacity(self, capacity: usize) -> Self {
        let record = (capacity > 0).then(|| Recording::ring(capacity).payloads(true));
        Self { record, ..self }
    }

    /// Installs a telemetry [`Recording`] budget: every kernel event
    /// (dispatches, sends, deliveries, drops, faults, protocol marks) is
    /// recorded as a typed [`abe_telemetry::TraceRecord`]. Read back via
    /// [`Network::trace`](crate::Network::trace) /
    /// [`Network::telemetry`](crate::Network::telemetry).
    ///
    /// Recording is passive: it draws no randomness and never perturbs
    /// scheduling, so the run (and its report) is identical with recording
    /// on or off.
    pub fn record(mut self, recording: Recording) -> Self {
        self.record = Some(recording);
        self
    }

    /// Builds the network, instantiating one protocol per node via
    /// `factory(node_index)`.
    ///
    /// # Errors
    ///
    /// Returns an error if a per-edge delay list has the wrong length or
    /// the declared [`NetworkClass`] is violated by the configuration.
    pub fn build<P, F>(self, mut factory: F) -> Result<Network<P>, BuildError>
    where
        P: Protocol,
        F: FnMut(usize) -> P,
    {
        let edge_count = self.topo.edge_count();
        let edge_delays: Vec<SharedDelay> = match self.edge_delays {
            Some(models) => {
                if models.len() != edge_count {
                    return Err(BuildError::EdgeDelayCount {
                        supplied: models.len(),
                        edges: edge_count,
                    });
                }
                models
            }
            None => vec![Arc::clone(&self.delay); edge_count],
        };

        if let Some(class) = &self.class {
            for delay in &edge_delays {
                class.validate(delay.as_ref(), &self.clocks, self.processing.as_ref())?;
            }
        }

        self.fault.validate(&self.topo)?;

        let n = self.topo.node_count() as usize;
        let seeds = SeedStream::new(self.seed);
        let mut protos = Vec::with_capacity(n);
        let mut clocks = Vec::with_capacity(n);
        let mut node_rngs = Vec::with_capacity(n);
        for i in 0..n {
            protos.push(factory(i));
            let mut clock_rng = seeds.stream("clock", i as u64);
            clocks.push(self.clocks.instantiate(&mut clock_rng));
            node_rngs.push(seeds.stream("node", i as u64));
        }
        let channel_rngs = (0..edge_count)
            .map(|e| seeds.stream("channel", e as u64))
            .collect();
        // Consuming processing models draw from one dedicated stream per
        // edge (keyed by edge id, so draws are shard-invariant);
        // non-consuming models (e.g. `Deterministic`) get only the scratch
        // stream, which they never read.
        let proc_rngs = self.processing.consumes_rng().then(|| {
            (0..edge_count)
                .map(|e| seeds.stream("proc-edge", e as u64))
                .collect()
        });
        let proc_rng = seeds.stream("processing", 0);
        let faults = FaultRuntime::compile(&self.fault, &self.topo, &seeds);
        // The adversary draws from its own dedicated child stream; stream
        // derivation is a pure hash, so an empty plan (compile → None)
        // leaves every other stream — and the whole run — untouched.
        let adversary = self
            .adversary
            .compile(edge_count, seeds.stream("adversary", 0));

        Ok(Network::assemble(
            self.topo,
            protos,
            clocks,
            node_rngs,
            edge_delays,
            channel_rngs,
            proc_rngs,
            self.processing,
            proc_rng,
            self.fifo,
            self.tick_interval,
            self.record,
            faults,
            adversary,
            self.shards,
        ))
    }
}

impl fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkBuilder")
            .field("nodes", &self.topo.node_count())
            .field("edges", &self.topo.edge_count())
            .field("delay", &self.delay)
            .field("clocks", &self.clocks)
            .field("fifo", &self.fifo)
            .field("seed", &self.seed)
            .field("tick_interval", &self.tick_interval)
            .field("class", &self.class)
            .field("fault", &self.fault)
            .field("adversary", &self.adversary)
            .field("shards", &self.shards)
            .finish()
    }
}
