//! The network runtime: wires protocols, channels, and clocks into an
//! [`abe_sim::Simulation`].
//!
//! Responsibilities:
//!
//! * deliver each sent message after an independent draw from the edge's
//!   delay model (non-FIFO by default — "the order of messages is arbitrary
//!   between any pair of nodes"), plus a processing-time draw (`γ`);
//! * drive each node's local clock ticks at its own bounded-drift rate,
//!   but only while the protocol [`wants_tick`](Protocol::wants_tick) —
//!   so networks quiesce once all activity ceases;
//! * aggregate message counts and experiment counters into a
//!   [`NetworkReport`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use abe_sim::{
    EventToken, QueueStats, RunLimits, RunOutcome, SimTime, Simulation, StepCtx, World,
    Xoshiro256PlusPlus,
};
use abe_telemetry::{Recording, RunRecorder, TraceEvent};

use crate::adversary::{AdversaryRuntime, AdversaryStats};
use crate::clock::LocalClock;
use crate::delay::SharedDelay;
use crate::fault::{FaultRuntime, FaultStats, SendFate};
use crate::protocol::{Ctx, InPort, Mark, Protocol};
use crate::topology::{EdgeId, NodeId, Topology};

/// Events driving a [`Network`].
#[derive(Debug, Clone)]
pub enum NetEvent<M> {
    /// Node start-up (dispatched once per node at time zero).
    Start(u32),
    /// A local clock tick at the given node.
    Tick(u32),
    /// Delivery of a message on the given edge.
    Deliver {
        /// The edge carrying the message.
        edge: u32,
        /// Declared wire size of the payload in bytes (0 for plain
        /// [`Ctx::send`]); carried so delivery-side trace records can
        /// stamp the size without consulting send-side state.
        size: u64,
        /// The payload.
        msg: M,
    },
    /// A scheduled node crash (from the fault plan).
    Crash(u32),
    /// A scheduled node recovery (from the fault plan).
    Recover(u32),
}

#[derive(Clone)]
pub(crate) struct NodeSlot<P> {
    pub(crate) proto: P,
    clock: LocalClock,
    rng: Xoshiro256PlusPlus,
    tick_token: Option<EventToken>,
    messages_sent: u64,
    messages_received: u64,
}

#[derive(Clone)]
pub(crate) struct ChannelState {
    pub(crate) delay: SharedDelay,
    rng: Xoshiro256PlusPlus,
    /// Dedicated processing-delay stream for this edge; `None` when the
    /// processing model does not consume randomness (see
    /// [`DelayModel::consumes_rng`](crate::delay::DelayModel::consumes_rng)).
    /// Keyed by edge id so the draw sequence is independent of which shard
    /// executes the edge.
    proc: Option<Box<Xoshiro256PlusPlus>>,
    last_arrival: SimTime,
    sent: u64,
}

/// Canonical total order of same-time events, encoded into the queue's
/// 64-bit ordering key (see [`abe_sim::EventQueue::schedule_keyed`]):
/// kind in bits 61–63, entity id (node or edge) in bits 29–60, a per-entity
/// sequence number in bits 0–28. The order is a *deterministic function of
/// the event's identity*, never of scheduling order, which is what makes
/// sequential and sharded execution pop identical event sequences.
pub(crate) const KIND_START: u64 = 0;
pub(crate) const KIND_CRASH: u64 = 1;
pub(crate) const KIND_RECOVER: u64 = 2;
pub(crate) const KIND_TICK: u64 = 3;
pub(crate) const KIND_DELIVER: u64 = 4;

const KEY_SEQ_BITS: u32 = 29;

#[inline]
pub(crate) fn event_key(kind: u64, id: u32, seq: u64) -> u64 {
    debug_assert!(kind < 8, "event kind out of range");
    debug_assert!(seq < 1 << KEY_SEQ_BITS, "per-entity sequence overflow");
    (kind << 61) | (u64::from(id) << KEY_SEQ_BITS) | (seq & ((1 << KEY_SEQ_BITS) - 1))
}

/// Aggregated outcome of a network run.
///
/// Equality (`==`) compares every field except the *structure-dependent*
/// dead-entry skim counters of [`QueueStats`] (`front_dead` / `far_dead`):
/// those count internal queue maintenance work, which legitimately differs
/// between a sequential run (one queue) and a sharded run (one queue per
/// shard) that are otherwise event-for-event identical.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Why the simulation returned.
    pub outcome: RunOutcome,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
    /// Kernel events processed.
    pub events_processed: u64,
    /// Messages handed to channels.
    pub messages_sent: u64,
    /// Messages delivered to protocols.
    pub messages_delivered: u64,
    /// Messages still in flight when the run ended.
    pub in_flight: u64,
    /// Local clock ticks dispatched.
    pub ticks: u64,
    /// Data-plane payload bytes accounted via [`Ctx::send_sized`],
    /// accumulated at *send* time (like `messages_sent`) so the total is
    /// identical under sequential and sharded execution. Control-plane
    /// protocols that only use [`Ctx::send`] report zero.
    pub payload_bytes: u64,
    /// Kernel event-queue telemetry (scheduled/cancelled/popped) for the
    /// whole run, so harness output can report raw engine activity.
    pub queue_stats: QueueStats,
    /// Fault-injection telemetry (crashes, drops, storm deliveries); all
    /// zero when no fault plan was installed.
    pub faults: FaultStats,
    /// Scheduling-adversary auditor telemetry (intercepts, clamps, max
    /// per-edge empirical mean); all zero when no adversary was installed.
    pub adversary: AdversaryStats,
    /// Trace records observed by the recorder (0 when recording was off).
    /// Observability metadata: excluded from `==`, which compares what
    /// *happened* in the run, not how much of it was watched.
    pub trace_records: u64,
    /// Trace records evicted by the recorder's retention cap (0 when
    /// recording was off or unbounded). Excluded from `==` like
    /// [`trace_records`](Self::trace_records).
    pub trace_dropped: u64,
    /// Experiment counters accumulated via [`Ctx::count`].
    pub counters: BTreeMap<&'static str, u64>,
}

impl NetworkReport {
    /// Convenience accessor for a counter, defaulting to 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

impl PartialEq for NetworkReport {
    fn eq(&self, other: &Self) -> bool {
        // Logical queue activity must match; the skim counters are
        // maintenance telemetry and excluded (see the type-level docs).
        let queue_eq = self.queue_stats.scheduled == other.queue_stats.scheduled
            && self.queue_stats.cancelled == other.queue_stats.cancelled
            && self.queue_stats.popped == other.queue_stats.popped;
        self.outcome == other.outcome
            && self.end_time == other.end_time
            && self.events_processed == other.events_processed
            && self.messages_sent == other.messages_sent
            && self.messages_delivered == other.messages_delivered
            && self.in_flight == other.in_flight
            && self.ticks == other.ticks
            && self.payload_bytes == other.payload_bytes
            && queue_eq
            && self.faults == other.faults
            && self.adversary == other.adversary
            && self.counters == other.counters
    }
}

/// Wall-clock telemetry of one sharded run, attached to the returned
/// [`Network`] by [`Network::run_sharded`] (absent after sequential runs).
///
/// On a host with fewer cores than shards the *wall-clock* speedup is
/// bounded by the core count; `busy_nanos` / `critical_path_nanos` expose
/// the work distribution so harnesses can also report the *modelled*
/// speedup `sum(busy) / critical_path` an unconstrained host would see.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardTiming {
    /// Number of shards the run actually used.
    pub shards: u32,
    /// Conservative time windows executed (parallel phase).
    pub windows: u64,
    /// Events executed one-at-a-time because the lookahead was zero (the
    /// degenerate serial fallback for zero-`min_delay` models).
    pub single_steps: u64,
    /// Per-shard busy time in nanoseconds (event processing only).
    pub busy_nanos: Vec<u64>,
    /// Sum over windows of the slowest shard's busy time — the modelled
    /// wall-clock lower bound with one core per shard.
    pub critical_path_nanos: u64,
    /// Whether the run aborted the windowed pass and re-ran sequentially
    /// (stop request or event-budget overshoot mid-window).
    pub fell_back: bool,
}

/// A fully wired network of `P`-protocol nodes, ready to simulate.
///
/// Construct through [`NetworkBuilder`](crate::NetworkBuilder); run with
/// [`Network::run`].
pub struct Network<P: Protocol> {
    pub(crate) topo: Arc<Topology>,
    /// Per node: in-port index → reverse out-port (bidirectional links).
    /// Shared (immutable) so shard partitions don't duplicate it.
    pub(crate) reply_ports: Arc<Vec<Vec<Option<usize>>>>,
    pub(crate) nodes: Vec<NodeSlot<P>>,
    pub(crate) channels: Vec<ChannelState>,
    pub(crate) processing: SharedDelay,
    /// Scratch stream handed to non-consuming processing models (see
    /// [`ChannelState::proc`] for the consuming case). Never observable:
    /// models with `consumes_rng() == false` must not read it.
    pub(crate) proc_rng: Xoshiro256PlusPlus,
    pub(crate) fifo: bool,
    pub(crate) tick_interval: f64,
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) messages_sent: u64,
    pub(crate) messages_delivered: u64,
    pub(crate) ticks: u64,
    pub(crate) payload_bytes: u64,
    /// The run recorder, when recording was requested (boxed: the
    /// recorder is cold state and the network is cloned per shard).
    pub(crate) rec: Option<Box<RunRecorder>>,
    pub(crate) faults: FaultRuntime,
    pub(crate) adversary: Option<AdversaryRuntime>,
    /// Requested shard count (from [`NetworkBuilder::shards`]); 1 = run
    /// sequentially even under [`Network::run_sharded`].
    pub(crate) shards: u32,
    /// First node id owned by this (partition of a) network; 0 for a full
    /// network. `nodes` holds the contiguous range starting here.
    pub(crate) shard_lo: u32,
    /// Global edge ids owned by this partition, sorted ascending; `None`
    /// when the network owns every edge (`channels[e]` is edge `e`).
    pub(crate) edge_ranks: Option<Vec<u32>>,
    /// Cross-shard sends produced during a window: `(arrival, key, edge,
    /// size, message)`, routed into the destination shard at the next
    /// barrier.
    pub(crate) outbox: Vec<(SimTime, u64, u32, u64, P::Message)>,
    /// Telemetry of the last sharded run (set on the merged network).
    pub(crate) timing: Option<ShardTiming>,
}

impl<P: Protocol + Clone> Clone for Network<P>
where
    P::Message: Clone,
{
    fn clone(&self) -> Self {
        Self {
            topo: Arc::clone(&self.topo),
            reply_ports: Arc::clone(&self.reply_ports),
            nodes: self.nodes.clone(),
            channels: self.channels.clone(),
            processing: Arc::clone(&self.processing),
            proc_rng: self.proc_rng.clone(),
            fifo: self.fifo,
            tick_interval: self.tick_interval,
            counters: self.counters.clone(),
            messages_sent: self.messages_sent,
            messages_delivered: self.messages_delivered,
            ticks: self.ticks,
            payload_bytes: self.payload_bytes,
            rec: self.rec.clone(),
            faults: self.faults.clone(),
            adversary: self.adversary.clone(),
            shards: self.shards,
            shard_lo: self.shard_lo,
            edge_ranks: self.edge_ranks.clone(),
            outbox: self.outbox.clone(),
            timing: self.timing.clone(),
        }
    }
}

enum Dispatch<M> {
    Start,
    Tick,
    Message(InPort, M),
}

impl<P: Protocol> Network<P> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        topo: Topology,
        protos: Vec<P>,
        clocks: Vec<LocalClock>,
        node_rngs: Vec<Xoshiro256PlusPlus>,
        edge_delays: Vec<SharedDelay>,
        channel_rngs: Vec<Xoshiro256PlusPlus>,
        proc_rngs: Option<Vec<Xoshiro256PlusPlus>>,
        processing: SharedDelay,
        proc_rng: Xoshiro256PlusPlus,
        fifo: bool,
        tick_interval: f64,
        record: Option<Recording>,
        faults: FaultRuntime,
        adversary: Option<AdversaryRuntime>,
        shards: u32,
    ) -> Self {
        debug_assert_eq!(protos.len(), topo.node_count() as usize);
        debug_assert_eq!(edge_delays.len(), topo.edge_count());
        let nodes = protos
            .into_iter()
            .zip(clocks)
            .zip(node_rngs)
            .map(|((proto, clock), rng)| NodeSlot {
                proto,
                clock,
                rng,
                tick_token: None,
                messages_sent: 0,
                messages_received: 0,
            })
            .collect();
        let mut proc_rngs = proc_rngs.map(Vec::into_iter);
        let channels = edge_delays
            .into_iter()
            .zip(channel_rngs)
            .map(|(delay, rng)| ChannelState {
                delay,
                rng,
                proc: proc_rngs.as_mut().and_then(|it| it.next()).map(Box::new),
                last_arrival: SimTime::ZERO,
                sent: 0,
            })
            .collect();
        let reply_ports = topo
            .nodes()
            .map(|node| {
                (0..topo.in_degree(node))
                    .map(|in_port| topo.reverse_port(node, in_port))
                    .collect()
            })
            .collect();
        Self {
            reply_ports: Arc::new(reply_ports),
            topo: Arc::new(topo),
            nodes,
            channels,
            processing,
            proc_rng,
            fifo,
            tick_interval,
            counters: BTreeMap::new(),
            messages_sent: 0,
            messages_delivered: 0,
            ticks: 0,
            payload_bytes: 0,
            rec: record.map(|r| Box::new(RunRecorder::new(&r))),
            faults,
            adversary,
            shards: shards.max(1),
            shard_lo: 0,
            edge_ranks: None,
            outbox: Vec::new(),
            timing: None,
        }
    }

    /// Index of `node` in this (partition of a) network's `nodes` vector.
    #[inline]
    pub(crate) fn node_slot(&self, node: u32) -> usize {
        (node - self.shard_lo) as usize
    }

    /// Whether `node` is owned by this partition (always true for a full
    /// network).
    #[inline]
    pub(crate) fn owns_node(&self, node: u32) -> bool {
        (node.wrapping_sub(self.shard_lo) as usize) < self.nodes.len()
    }

    /// Telemetry of the last [`run_sharded`](Network::run_sharded) call,
    /// attached to the returned network; `None` after sequential runs.
    pub fn shard_timing(&self) -> Option<&ShardTiming> {
        self.timing.as_ref()
    }

    /// The retained execution trace, if recording was enabled via
    /// [`NetworkBuilder::record`](crate::NetworkBuilder::record) (or its
    /// [`trace_capacity`](crate::NetworkBuilder::trace_capacity) sugar).
    ///
    /// Yields typed [`TraceRecord`](abe_telemetry::TraceRecord)s, oldest
    /// first, bounded by the recording's retention cap. `Display` on a
    /// record's event reproduces the historical string-trace lines
    /// (`"start n0"`, `"deliver n0 -> n1: ()"`, …).
    pub fn trace(&self) -> impl Iterator<Item = &abe_telemetry::TraceRecord> {
        self.rec.iter().flat_map(|r| r.records())
    }

    /// The run recorder, when recording was enabled: retained records,
    /// seen/dropped counts, and the optional histogram aggregate.
    pub fn telemetry(&self) -> Option<&RunRecorder> {
        self.rec.as_deref()
    }

    /// Detaches the run recorder from the network, leaving recording
    /// disabled. Runner layers use this to hand the captured telemetry to
    /// their outcome structs without cloning the record buffer.
    pub fn take_telemetry(&mut self) -> Option<Box<RunRecorder>> {
        self.rec.take()
    }

    /// The topology this network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Shared access to the protocol state of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &P {
        &self.nodes[i].proto
    }

    /// Iterates over all protocol states in node order.
    pub fn protocols(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter().map(|s| &s.proto)
    }

    /// Consumes the network, returning the protocol states in node order.
    ///
    /// The allocation-free way to claim a protocol's final state after a
    /// run (instead of cloning out of [`Network::node`]).
    pub fn into_protocols(self) -> Vec<P> {
        self.nodes.into_iter().map(|s| s.proto).collect()
    }

    /// Messages sent by node `i` so far.
    pub fn node_messages_sent(&self, i: usize) -> u64 {
        self.nodes[i].messages_sent
    }

    /// Messages received by node `i` so far.
    pub fn node_messages_received(&self, i: usize) -> u64 {
        self.nodes[i].messages_received
    }

    /// Runs the network from time zero until quiescence, a stop request,
    /// or a limit; returns the report and the final network state.
    ///
    /// Quiescence means: no messages in flight *and* no node wants ticks.
    pub fn run(self, limits: RunLimits) -> (NetworkReport, Network<P>) {
        let n = self.topo.node_count();
        let mut sim = Simulation::new(self);
        for i in 0..n {
            sim.prime_keyed(
                SimTime::ZERO,
                event_key(KIND_START, i, 0),
                NetEvent::Start(i),
            );
        }
        // Prime the fault schedule. Crash/recover events order *before*
        // same-time ticks and deliveries by key kind, so a crash at t = 0
        // still lets `on_start` run first (start < crash by kind).
        let windows: Vec<_> = sim.world().faults.crash_windows().to_vec();
        for (w_idx, w) in windows.into_iter().enumerate() {
            let seq = w_idx as u64;
            sim.prime_keyed(
                SimTime::from_secs(w.at),
                event_key(KIND_CRASH, w.node, seq),
                NetEvent::Crash(w.node),
            );
            if let Some(recover_at) = w.recover_at {
                sim.prime_keyed(
                    SimTime::from_secs(recover_at),
                    event_key(KIND_RECOVER, w.node, seq),
                    NetEvent::Recover(w.node),
                );
            }
        }
        let kernel_report = sim.run(limits);
        let end_time = sim.now();
        let events_processed = sim.events_processed();
        let mut net = sim.into_world();
        let report = NetworkReport {
            outcome: kernel_report.outcome,
            end_time,
            events_processed,
            messages_sent: net.messages_sent,
            messages_delivered: net.messages_delivered,
            in_flight: net.messages_sent - net.messages_delivered - net.faults.stats.dropped(),
            ticks: net.ticks,
            payload_bytes: net.payload_bytes,
            queue_stats: kernel_report.queue_stats,
            faults: net.faults.stats,
            adversary: net
                .adversary
                .as_ref()
                .map_or_else(AdversaryStats::default, AdversaryRuntime::stats),
            trace_records: net.rec.as_ref().map_or(0, |r| r.seen()),
            trace_dropped: net.rec.as_ref().map_or(0, |r| r.dropped()),
            // The report takes ownership of the accumulated counters; the
            // returned network keeps the protocol states but no longer
            // carries them (they have no accessor on `Network` anyway).
            counters: std::mem::take(&mut net.counters),
        };
        (report, net)
    }

    /// Dispatches one protocol handler and applies its effects.
    fn dispatch(
        &mut self,
        step: &mut StepCtx<'_, NetEvent<P::Message>>,
        node_index: u32,
        kind: Dispatch<P::Message>,
    ) {
        let node_id = NodeId::new(node_index);
        let out_degree = self.topo.out_degree(node_id);
        let in_degree = self.topo.in_degree(node_id);
        let network_size = self.topo.node_count();

        let local = self.node_slot(node_index);
        let (outbox, counters, marks, payload_bytes, stop) = {
            let reply_ports = &self.reply_ports[node_index as usize];
            let slot = &mut self.nodes[local];
            let local_time = slot.clock.advance_to(step.now());
            let mut ctx = Ctx::new(
                local_time,
                network_size,
                out_degree,
                in_degree,
                reply_ports,
                &mut slot.rng,
            );
            match kind {
                Dispatch::Start => slot.proto.on_start(&mut ctx),
                Dispatch::Tick => slot.proto.on_tick(&mut ctx),
                Dispatch::Message(port, msg) => slot.proto.on_message(port, msg, &mut ctx),
            }
            ctx.into_effects()
        };

        for (port, msg, bytes) in outbox {
            self.transmit(step, node_id, port.0, msg, bytes);
        }
        // Marks trail the dispatch's send records, in call order.
        if let Some(r) = self.rec.as_deref_mut() {
            for mark in marks {
                r.emit(match mark {
                    Mark::State(to) => TraceEvent::StateChange {
                        node: node_index,
                        to,
                    },
                    Mark::Decide(value) => TraceEvent::Decide {
                        node: node_index,
                        value,
                    },
                });
            }
        }
        for (name, amount) in counters {
            *self.counters.entry(name).or_insert(0) += amount;
        }
        self.payload_bytes += payload_bytes;
        if stop {
            step.request_stop();
        }
        self.sync_tick(step, node_index);
    }

    /// Samples delays and schedules the delivery of one message.
    fn transmit(
        &mut self,
        step: &mut StepCtx<'_, NetEvent<P::Message>>,
        src: NodeId,
        port: usize,
        msg: P::Message,
        size: u64,
    ) {
        let edge = self.topo.out_edges(src)[port];
        let dst = self.topo.edge(edge).dst;
        let src_local = self.node_slot(src.index() as u32);
        let channel = &mut self.channels[match &self.edge_ranks {
            None => edge.index(),
            Some(ranks) => ranks
                .binary_search(&(edge.index() as u32))
                .expect("edge not owned by this shard"),
        }];
        // Delay and processing draws happen before the fault verdict, so
        // the channel/processing RNG streams advance identically whether a
        // message is dropped or not. Consuming processing models draw from
        // the edge's dedicated stream (shard-invariant); non-consuming
        // models get the never-read scratch stream.
        let channel_delay = channel.delay.sample(&mut channel.rng);
        let proc_delay = match channel.proc.as_deref_mut() {
            Some(rng) => self.processing.sample(rng),
            None => self.processing.sample(&mut self.proc_rng),
        };
        let fate =
            self.faults
                .on_send(edge.index(), src.index(), dst.index(), step.now().as_secs());
        // The per-edge send sequence feeds the delivery's ordering key;
        // dropped sends consume a sequence number too, keeping the key of
        // every *delivered* message independent of fault verdicts ordering.
        let send_seq = channel.sent;
        let stretch = match fate {
            SendFate::Deliver { stretch } => stretch,
            SendFate::DropPartition | SendFate::DropRandom => {
                // Sent but lost in transit: the send is accounted, the
                // delivery never scheduled; FaultStats carries the loss.
                // The drop verdict precedes the adversary hook, so no
                // granted delay exists — the trace carries only the drop
                // record (no `Send`).
                channel.sent += 1;
                self.messages_sent += 1;
                self.nodes[src_local].messages_sent += 1;
                if let Some(r) = self.rec.as_deref_mut() {
                    let (edge, src, dst) =
                        (edge.index() as u32, src.index() as u32, dst.index() as u32);
                    r.emit(if fate == SendFate::DropPartition {
                        TraceEvent::DropPartition {
                            edge,
                            src,
                            dst,
                            seq: send_seq,
                            size,
                        }
                    } else {
                        TraceEvent::DropRandom {
                            edge,
                            src,
                            dst,
                            seq: send_seq,
                            size,
                        }
                    });
                }
                return;
            }
        };
        // Adversary hook: a scheduling adversary replaces the sampled
        // channel delay for messages that will be delivered, audited
        // against its per-edge budget. Storm stretch applies on top (the
        // auditor bounds the adversary, not the fault plan).
        let channel_delay = match self.adversary.as_mut() {
            Some(adv) => {
                let nodes = &self.nodes;
                let heat = |i: u32| nodes[i as usize].proto.heat();
                adv.intercept(
                    edge.index(),
                    src.index() as u32,
                    dst.index() as u32,
                    step.now().as_secs(),
                    channel_delay,
                    &heat,
                    self.topo.node_count(),
                )
            }
            None => channel_delay,
        };
        let mut arrival = step.now() + channel_delay * stretch + proc_delay;
        if self.fifo && arrival < channel.last_arrival {
            arrival = channel.last_arrival;
        }
        channel.last_arrival = arrival;
        channel.sent += 1;
        self.messages_sent += 1;
        self.nodes[src_local].messages_sent += 1;
        if let Some(r) = self.rec.as_deref_mut() {
            // `channel_delay` here is the *granted* delay: post-adversary,
            // pre-storm-stretch — exactly what Definition 1 bounds in
            // expectation and what `BudgetAuditor` audits.
            r.emit(TraceEvent::Send {
                edge: edge.index() as u32,
                src: src.index() as u32,
                dst: dst.index() as u32,
                seq: send_seq,
                size,
                delay: channel_delay.as_secs(),
            });
        }
        let key = event_key(KIND_DELIVER, edge.index() as u32, send_seq);
        if self.owns_node(dst.index() as u32) {
            step.schedule_at_keyed(
                arrival,
                key,
                NetEvent::Deliver {
                    edge: edge.index() as u32,
                    size,
                    msg,
                },
            );
        } else {
            // Cross-shard send: held in the outbox and routed into the
            // destination shard's queue at the next window barrier. The
            // key makes insertion order irrelevant.
            self.outbox
                .push((arrival, key, edge.index() as u32, size, msg));
        }
    }

    /// Ensures the node's tick schedule matches its `wants_tick` state.
    fn sync_tick(&mut self, step: &mut StepCtx<'_, NetEvent<P::Message>>, node_index: u32) {
        let local = self.node_slot(node_index);
        let slot = &mut self.nodes[local];
        let wants = slot.proto.wants_tick();
        match (wants, slot.tick_token) {
            (true, None) => {
                let stride = slot.proto.tick_stride(&mut slot.rng).max(1);
                // Under wandering drift the rate is re-drawn once per
                // stride; rates stay within the clock bounds throughout.
                let interval = slot
                    .clock
                    .real_interval(self.tick_interval * stride as f64, &mut slot.rng);
                let token = step.schedule_at_keyed(
                    step.now() + interval,
                    event_key(KIND_TICK, node_index, 0),
                    NetEvent::Tick(node_index),
                );
                slot.tick_token = Some(token);
            }
            (false, Some(token)) => {
                step.cancel(token);
                slot.tick_token = None;
            }
            _ => {}
        }
    }

    /// Number of messages sent over `edge` so far.
    pub fn edge_messages(&self, edge: EdgeId) -> u64 {
        self.channels[edge.index()].sent
    }
}

impl<P: Protocol> World for Network<P> {
    type Event = NetEvent<P::Message>;

    fn handle(&mut self, step: &mut StepCtx<'_, Self::Event>, event: Self::Event) {
        // Open the dispatch's trace stamp: `(now, key)` identify the
        // kernel event being handled, identically in sequential and
        // sharded execution (keys encode event identity, not order).
        if let Some(r) = self.rec.as_deref_mut() {
            r.begin(step.now(), step.key());
        }
        match event {
            NetEvent::Start(i) => {
                if let Some(r) = self.rec.as_deref_mut() {
                    r.emit(TraceEvent::Start { node: i });
                }
                if self.faults.is_down(i as usize) {
                    return;
                }
                self.dispatch(step, i, Dispatch::Start);
            }
            NetEvent::Tick(i) => {
                if let Some(r) = self.rec.as_deref_mut() {
                    r.emit(TraceEvent::Tick { node: i });
                }
                let local = self.node_slot(i);
                self.nodes[local].tick_token = None;
                // Defensive: crashes cancel the pending tick, so a tick
                // firing on a down node should be impossible.
                if self.faults.is_down(i as usize) {
                    return;
                }
                self.ticks += 1;
                self.dispatch(step, i, Dispatch::Tick);
            }
            NetEvent::Deliver { edge, size, msg } => {
                let eid = EdgeId_from(edge);
                let e = self.topo.edge(eid);
                let dst = e.dst;
                let src = e.src;
                if self.faults.is_down(dst.index()) {
                    // The destination is crashed: the message is lost, not
                    // delivered — counted so telemetry still balances.
                    if let Some(r) = self.rec.as_deref_mut() {
                        // The deliver key embeds the per-edge send seq.
                        let seq = step.key() & ((1 << KEY_SEQ_BITS) - 1);
                        r.emit(TraceEvent::DropCrash {
                            edge,
                            src: src.index() as u32,
                            dst: dst.index() as u32,
                            seq,
                            size,
                        });
                    }
                    self.faults.note_dropped_crash();
                    return;
                }
                if self.rec.is_some() {
                    let seq = step.key() & ((1 << KEY_SEQ_BITS) - 1);
                    let payload = self
                        .rec
                        .as_deref()
                        .is_some_and(RunRecorder::capture_payloads)
                        .then(|| format!("{msg:?}").into_boxed_str());
                    if let Some(r) = self.rec.as_deref_mut() {
                        r.emit(TraceEvent::Deliver {
                            edge,
                            src: src.index() as u32,
                            dst: dst.index() as u32,
                            seq,
                            size,
                            payload,
                        });
                    }
                }
                let port = InPort(self.topo.in_port(eid));
                self.messages_delivered += 1;
                let local = self.node_slot(dst.index() as u32);
                self.nodes[local].messages_received += 1;
                self.dispatch(step, dst.index() as u32, Dispatch::Message(port, msg));
            }
            NetEvent::Crash(i) => {
                if let Some(r) = self.rec.as_deref_mut() {
                    r.emit(TraceEvent::Crash { node: i });
                }
                // Freeze the node: cancel its pending tick (visible in the
                // queue's cancelled counter) and mark it down.
                let local = self.node_slot(i);
                if let Some(token) = self.nodes[local].tick_token.take() {
                    step.cancel(token);
                }
                self.faults.on_crash(i as usize);
            }
            NetEvent::Recover(i) => {
                if let Some(r) = self.rec.as_deref_mut() {
                    r.emit(TraceEvent::Recover { node: i });
                }
                self.faults.on_recover(i as usize);
                if !self.faults.is_down(i as usize) {
                    // Resume ticking if the (frozen) protocol wants it.
                    self.sync_tick(step, i);
                }
            }
        }
    }
}

// EdgeId has no public raw constructor (indices are issued by Topology);
// the runtime reconstructs ids from its own events, which always hold
// valid indices for the owned topology.
#[allow(non_snake_case)]
fn EdgeId_from(raw: u32) -> EdgeId {
    // Safety of representation: Topology hands out dense indices starting
    // at zero; NetEvent::Deliver is only constructed from those.
    crate::topology::edge_id_from_raw(raw)
}

impl<P: Protocol + fmt::Debug> fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.channels.len())
            .field("messages_sent", &self.messages_sent)
            .field("messages_delivered", &self.messages_delivered)
            .field("ticks", &self.ticks)
            .finish()
    }
}

#[cfg(test)]
mod tick_tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::delay::Deterministic;
    use crate::protocol::{Ctx, OutPort};
    use crate::Topology;
    use abe_sim::RunLimits;

    /// Ticks `limit` times with a fixed stride, recording tick times.
    #[derive(Debug)]
    struct Strider {
        stride: u64,
        remaining: u32,
        tick_times: Vec<f64>,
    }

    impl Protocol for Strider {
        type Message = ();
        fn on_message(&mut self, _from: InPort, _msg: (), _ctx: &mut Ctx<'_, ()>) {}
        fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.remaining -= 1;
            self.tick_times.push(ctx.local_time());
        }
        fn wants_tick(&self) -> bool {
            self.remaining > 0
        }
        fn tick_stride(&mut self, _rng: &mut Xoshiro256PlusPlus) -> u64 {
            self.stride
        }
    }

    fn run_strider(stride: u64, ticks: u32) -> Vec<f64> {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(1).unwrap())
            .delay(Deterministic::zero())
            .build(|_| Strider {
                stride,
                remaining: ticks,
                tick_times: Vec::new(),
            })
            .unwrap();
        let (report, net) = net.run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        // Take ownership of the final state instead of cloning mid-run
        // telemetry out of a borrowed node.
        net.into_protocols().swap_remove(0).tick_times
    }

    #[test]
    fn stride_one_ticks_every_interval() {
        let times = run_strider(1, 5);
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn stride_k_ticks_every_k_intervals() {
        let times = run_strider(4, 3);
        assert_eq!(times, vec![4.0, 8.0, 12.0]);
    }

    #[test]
    fn stride_zero_is_clamped_to_one() {
        let times = run_strider(0, 2);
        assert_eq!(times, vec![1.0, 2.0]);
    }

    /// Uses the reply port to bounce a message back where it came from.
    #[derive(Debug)]
    struct Bouncer {
        serve: bool,
        bounces: u32,
        got_back: u32,
    }

    impl Protocol for Bouncer {
        type Message = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if self.serve {
                for p in 0..ctx.out_degree() {
                    ctx.send(OutPort(p), 0);
                }
            }
        }
        fn on_message(&mut self, from: InPort, msg: u32, ctx: &mut Ctx<'_, u32>) {
            if self.serve {
                self.got_back += 1;
            } else if msg < self.bounces {
                let back = ctx.reply_port(from).expect("symmetric topology");
                ctx.send(back, msg + 1);
            }
        }
    }

    #[test]
    fn reply_ports_route_back_to_sender() {
        let net = NetworkBuilder::new(Topology::star(5).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .build(|i| Bouncer {
                serve: i == 0,
                bounces: 1,
                got_back: 0,
            })
            .unwrap();
        let (report, net) = net.run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        // Hub sent 4, each leaf bounced once back to the hub.
        assert_eq!(net.node(0).got_back, 4);
        assert_eq!(report.messages_sent, 8);
    }

    /// Every event kind advances the local clock before dispatch.
    #[derive(Debug)]
    struct ClockWatcher {
        fire: bool,
        seen: Vec<f64>,
    }

    impl Protocol for ClockWatcher {
        type Message = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.seen.push(ctx.local_time());
            if self.fire {
                ctx.send(OutPort(0), ());
            }
        }
        fn on_message(&mut self, _from: InPort, _msg: (), ctx: &mut Ctx<'_, ()>) {
            self.seen.push(ctx.local_time());
        }
    }

    #[test]
    fn local_time_advances_with_delivery() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(2.5).unwrap())
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        assert_eq!(net.node(0).seen, vec![0.0]);
        assert_eq!(net.node(1).seen, vec![0.0, 2.5]);
    }

    #[test]
    fn edge_message_counters_track_per_channel() {
        let topo = Topology::unidirectional_ring(2).unwrap();
        let edges: Vec<_> = topo.edges().map(|(id, _)| id).collect();
        let net = NetworkBuilder::new(topo)
            .delay(Deterministic::new(1.0).unwrap())
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        assert_eq!(net.edge_messages(edges[0]), 1);
        assert_eq!(net.edge_messages(edges[1]), 0);
    }

    #[test]
    fn tracing_records_events_in_order() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .trace_capacity(64)
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        let lines: Vec<String> = net.trace().map(|r| r.event.to_string()).collect();
        assert_eq!(
            lines,
            vec![
                "start n0",
                "send n0 -> n1",
                "start n1",
                "deliver n0 -> n1: ()",
            ]
        );
        // Timestamps are monotone.
        let times: Vec<f64> = net.trace().map(|r| r.time.as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Records of one dispatch share its (time, key) stamp with
        // consecutive sub indices: `start n0` and its send.
        let stamps: Vec<(u64, u32)> = net.trace().map(|r| (r.key, r.sub)).collect();
        assert_eq!(stamps[0].0, stamps[1].0);
        assert_eq!((stamps[0].1, stamps[1].1), (0, 1));
    }

    #[test]
    fn tracing_disabled_by_default() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        assert_eq!(net.trace().count(), 0);
    }

    #[test]
    fn trace_capacity_bounds_retention() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .trace_capacity(1)
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (report, net) = net.run(RunLimits::unbounded());
        // Only the newest record is retained; evictions are counted.
        assert_eq!(net.trace().count(), 1);
        assert_eq!(
            net.trace().next().unwrap().event.to_string(),
            "deliver n0 -> n1: ()"
        );
        let rec = net.telemetry().expect("recording enabled");
        assert_eq!(rec.seen(), 4);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(report.trace_records, 4);
        assert_eq!(report.trace_dropped, 3);
    }

    #[test]
    fn shared_processing_model_is_applied_per_delivery() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .processing(Deterministic::new(0.25).unwrap())
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        assert_eq!(net.node(1).seen, vec![0.0, 1.25]);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::delay::Deterministic;
    use crate::fault::{EdgeSelector, FaultPlan};
    use crate::protocol::{Ctx, OutPort};
    use crate::Topology;
    use abe_sim::RunLimits;

    /// Sends one ping per tick forever; receivers record arrival times.
    #[derive(Debug)]
    struct Ticker {
        source: bool,
        budget: u32,
        seen: Vec<f64>,
    }

    impl Protocol for Ticker {
        type Message = ();
        fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.budget -= 1;
            ctx.send(OutPort(0), ());
        }
        fn on_message(&mut self, _from: InPort, _msg: (), ctx: &mut Ctx<'_, ()>) {
            self.seen.push(ctx.local_time());
        }
        fn wants_tick(&self) -> bool {
            self.source && self.budget > 0
        }
    }

    fn ticker_net(plan: FaultPlan, budget: u32) -> Network<Ticker> {
        NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(0.25).unwrap())
            .fault(plan)
            .build(|i| Ticker {
                source: i == 0,
                budget,
                seen: Vec::new(),
            })
            .unwrap()
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let without = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(0.25).unwrap())
            .seed(9)
            .build(|i| Ticker {
                source: i == 0,
                budget: 5,
                seen: Vec::new(),
            })
            .unwrap();
        let with = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(0.25).unwrap())
            .seed(9)
            .fault(FaultPlan::new())
            .build(|i| Ticker {
                source: i == 0,
                budget: 5,
                seen: Vec::new(),
            })
            .unwrap();
        let (a, na) = without.run(RunLimits::unbounded());
        let (b, nb) = with.run(RunLimits::unbounded());
        assert_eq!(a, b);
        assert_eq!(na.node(1).seen, nb.node(1).seen);
        assert_eq!(a.faults, crate::fault::FaultStats::default());
    }

    #[test]
    fn crashed_destination_loses_messages_and_accounting_balances() {
        // Node 1 is down for t in [1, 2): pings arriving in that window
        // (sent at 0.75..1.75, arriving 0.25 later) are lost.
        let plan = FaultPlan::new().crash_recover(1, 1.0, 2.0);
        let (report, net) = ticker_net(plan, 8).run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        assert_eq!(report.faults.crashes, 1);
        assert_eq!(report.faults.recoveries, 1);
        assert!(report.faults.dropped_crash > 0);
        assert_eq!(report.messages_sent, 8);
        assert_eq!(report.messages_delivered, 8 - report.faults.dropped_crash);
        assert_eq!(report.in_flight, 0);
        // No arrival timestamp falls inside the down window.
        assert!(net.node(1).seen.iter().all(|&t| !(1.0..2.0).contains(&t)));
    }

    #[test]
    fn crash_stop_cancels_ticks_and_quiesces() {
        // The ticking source crash-stops at t = 2.5; its pending tick is
        // cancelled and the network quiesces early.
        let plan = FaultPlan::new().crash_stop(0, 2.5);
        let (report, _) = ticker_net(plan, 100).run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        assert_eq!(report.faults.crashes, 1);
        assert_eq!(report.faults.recoveries, 0);
        // Ticks at t = 1 and t = 2 fired before the crash.
        assert_eq!(report.messages_sent, 2);
        assert!(
            report.queue_stats.cancelled >= 1,
            "{:?}",
            report.queue_stats
        );
    }

    #[test]
    fn crash_recover_resumes_ticking() {
        // Source down for [1.5, 4.5): ticks pause, then resume.
        let plan = FaultPlan::new().crash_recover(0, 1.5, 4.5);
        let (report, net) = ticker_net(plan, 4).run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        // Tick at t=1 fires; ticks at 2, 3, 4 are suppressed; ticking
        // resumes after 4.5, so all 4 budgeted pings go out eventually.
        assert_eq!(report.messages_sent, 4);
        assert_eq!(net.node(1).seen.len(), 4);
        assert!(net.node(1).seen.iter().any(|&t| t > 4.5));
    }

    #[test]
    fn partition_window_drops_cut_crossing_sends() {
        // Cut node 1 off for [0.5, 2.5): pings sent (at integer times)
        // inside the window are dropped at send time.
        let plan = FaultPlan::new().partition(vec![1], 0.5, 2.5);
        let (report, net) = ticker_net(plan, 5).run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        assert_eq!(report.faults.dropped_partition, 2); // sends at t=1, 2
        assert_eq!(report.messages_sent, 5);
        assert_eq!(report.messages_delivered, 3);
        assert_eq!(report.in_flight, 0);
        assert_eq!(net.node(1).seen, vec![3.25, 4.25, 5.25]);
    }

    #[test]
    fn random_drop_probability_one_loses_everything() {
        let plan = FaultPlan::new().drop(EdgeSelector::All, 1.0);
        let (report, net) = ticker_net(plan, 6).run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        assert_eq!(report.messages_sent, 6);
        assert_eq!(report.messages_delivered, 0);
        assert_eq!(report.faults.dropped_random, 6);
        assert_eq!(report.in_flight, 0);
        assert!(net.node(1).seen.is_empty());
    }

    #[test]
    fn delay_storm_stretches_latency_in_window() {
        // Storm multiplies the 0.25 delay by 8 for sends in [1.5, 2.5):
        // the ping sent at t=2 arrives at 4.0 instead of 2.25.
        let plan = FaultPlan::new().delay_storm(EdgeSelector::All, 1.5, 2.5, 8.0);
        let (report, net) = ticker_net(plan, 3).run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        assert_eq!(report.faults.storm_deliveries, 1);
        // Deliveries arrive in time order: the stormed ping overtakes none
        // here but lands last (sent t=2, arrives 4.0).
        assert_eq!(net.node(1).seen, vec![1.25, 3.25, 4.0]);
    }

    #[test]
    fn fault_events_appear_in_trace() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(0.25).unwrap())
            .trace_capacity(64)
            .fault(FaultPlan::new().crash_recover(1, 0.5, 1.5))
            .build(|i| Ticker {
                source: i == 0,
                budget: 2,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        let lines: Vec<String> = net.trace().map(|r| r.event.to_string()).collect();
        assert!(lines.iter().any(|l| l == "crash n1"), "{lines:?}");
        assert!(lines.iter().any(|l| l == "recover n1"), "{lines:?}");
        // A delivery that hit the down window is recorded as a typed
        // crash-drop, not a delivery.
        assert!(
            lines.iter().any(|l| l.starts_with("drop-crash")),
            "{lines:?}"
        );
    }

    #[test]
    fn empty_adversary_plan_is_bit_identical_to_no_plan() {
        let build = |with_plan: bool| {
            let mut b = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
                .delay(crate::delay::Exponential::from_mean(0.25).unwrap())
                .seed(17);
            if with_plan {
                b = b.adversary(crate::adversary::AdversaryPlan::none());
            }
            b.build(|i| Ticker {
                source: i == 0,
                budget: 6,
                seen: Vec::new(),
            })
            .unwrap()
        };
        let (a, na) = build(false).run(RunLimits::unbounded());
        let (b, nb) = build(true).run(RunLimits::unbounded());
        assert_eq!(a, b);
        assert_eq!(na.node(1).seen, nb.node(1).seen);
        assert_eq!(a.adversary, crate::adversary::AdversaryStats::default());
    }

    #[test]
    fn invalid_plan_fails_build() {
        let err = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .fault(FaultPlan::new().crash_stop(7, 1.0))
            .build(|i| Ticker {
                source: i == 0,
                budget: 1,
                seen: Vec::new(),
            })
            .unwrap_err();
        assert!(matches!(err, crate::BuildError::Fault(_)), "{err}");
        assert!(err.to_string().contains("fault plan"));
    }
}
