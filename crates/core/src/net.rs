//! The network runtime: wires protocols, channels, and clocks into an
//! [`abe_sim::Simulation`].
//!
//! Responsibilities:
//!
//! * deliver each sent message after an independent draw from the edge's
//!   delay model (non-FIFO by default — "the order of messages is arbitrary
//!   between any pair of nodes"), plus a processing-time draw (`γ`);
//! * drive each node's local clock ticks at its own bounded-drift rate,
//!   but only while the protocol [`wants_tick`](Protocol::wants_tick) —
//!   so networks quiesce once all activity ceases;
//! * aggregate message counts and experiment counters into a
//!   [`NetworkReport`].

use std::collections::BTreeMap;
use std::fmt;

use abe_sim::{
    EventToken, QueueStats, RunLimits, RunOutcome, SimTime, Simulation, StepCtx, TraceBuffer,
    World, Xoshiro256PlusPlus,
};

use crate::clock::LocalClock;
use crate::delay::SharedDelay;
use crate::protocol::{Ctx, InPort, Protocol};
use crate::topology::{EdgeId, NodeId, Topology};

/// Events driving a [`Network`].
#[derive(Debug, Clone)]
pub enum NetEvent<M> {
    /// Node start-up (dispatched once per node at time zero).
    Start(u32),
    /// A local clock tick at the given node.
    Tick(u32),
    /// Delivery of a message on the given edge.
    Deliver {
        /// The edge carrying the message.
        edge: u32,
        /// The payload.
        msg: M,
    },
}

pub(crate) struct NodeSlot<P> {
    pub(crate) proto: P,
    clock: LocalClock,
    rng: Xoshiro256PlusPlus,
    tick_token: Option<EventToken>,
    messages_sent: u64,
    messages_received: u64,
}

pub(crate) struct ChannelState {
    pub(crate) delay: SharedDelay,
    rng: Xoshiro256PlusPlus,
    last_arrival: SimTime,
    sent: u64,
}

/// Aggregated outcome of a network run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Why the simulation returned.
    pub outcome: RunOutcome,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
    /// Kernel events processed.
    pub events_processed: u64,
    /// Messages handed to channels.
    pub messages_sent: u64,
    /// Messages delivered to protocols.
    pub messages_delivered: u64,
    /// Messages still in flight when the run ended.
    pub in_flight: u64,
    /// Local clock ticks dispatched.
    pub ticks: u64,
    /// Kernel event-queue telemetry (scheduled/cancelled/popped) for the
    /// whole run, so harness output can report raw engine activity.
    pub queue_stats: QueueStats,
    /// Experiment counters accumulated via [`Ctx::count`].
    pub counters: BTreeMap<&'static str, u64>,
}

impl NetworkReport {
    /// Convenience accessor for a counter, defaulting to 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// A fully wired network of `P`-protocol nodes, ready to simulate.
///
/// Construct through [`NetworkBuilder`](crate::NetworkBuilder); run with
/// [`Network::run`].
pub struct Network<P: Protocol> {
    topo: Topology,
    /// Per node: in-port index → reverse out-port (bidirectional links).
    reply_ports: Vec<Vec<Option<usize>>>,
    nodes: Vec<NodeSlot<P>>,
    channels: Vec<ChannelState>,
    processing: SharedDelay,
    proc_rng: Xoshiro256PlusPlus,
    fifo: bool,
    tick_interval: f64,
    counters: BTreeMap<&'static str, u64>,
    messages_sent: u64,
    messages_delivered: u64,
    ticks: u64,
    trace: Option<TraceBuffer<String>>,
}

enum Dispatch<M> {
    Start,
    Tick,
    Message(InPort, M),
}

impl<P: Protocol> Network<P> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        topo: Topology,
        protos: Vec<P>,
        clocks: Vec<LocalClock>,
        node_rngs: Vec<Xoshiro256PlusPlus>,
        edge_delays: Vec<SharedDelay>,
        channel_rngs: Vec<Xoshiro256PlusPlus>,
        processing: SharedDelay,
        proc_rng: Xoshiro256PlusPlus,
        fifo: bool,
        tick_interval: f64,
        trace_capacity: usize,
    ) -> Self {
        debug_assert_eq!(protos.len(), topo.node_count() as usize);
        debug_assert_eq!(edge_delays.len(), topo.edge_count());
        let nodes = protos
            .into_iter()
            .zip(clocks)
            .zip(node_rngs)
            .map(|((proto, clock), rng)| NodeSlot {
                proto,
                clock,
                rng,
                tick_token: None,
                messages_sent: 0,
                messages_received: 0,
            })
            .collect();
        let channels = edge_delays
            .into_iter()
            .zip(channel_rngs)
            .map(|(delay, rng)| ChannelState {
                delay,
                rng,
                last_arrival: SimTime::ZERO,
                sent: 0,
            })
            .collect();
        let reply_ports = topo
            .nodes()
            .map(|node| {
                (0..topo.in_degree(node))
                    .map(|in_port| topo.reverse_port(node, in_port))
                    .collect()
            })
            .collect();
        Self {
            reply_ports,
            topo,
            nodes,
            channels,
            processing,
            proc_rng,
            fifo,
            tick_interval,
            counters: BTreeMap::new(),
            messages_sent: 0,
            messages_delivered: 0,
            ticks: 0,
            trace: (trace_capacity > 0).then(|| TraceBuffer::new(trace_capacity)),
        }
    }

    /// The retained execution trace, if tracing was enabled via
    /// [`NetworkBuilder::trace_capacity`](crate::NetworkBuilder::trace_capacity).
    ///
    /// Records one line per network event (`deliver`, `tick`, `start`),
    /// oldest first, bounded by the configured capacity.
    pub fn trace(&self) -> impl Iterator<Item = &abe_sim::TraceRecord<String>> {
        self.trace.iter().flat_map(|t| t.iter())
    }

    /// The topology this network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Shared access to the protocol state of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &P {
        &self.nodes[i].proto
    }

    /// Iterates over all protocol states in node order.
    pub fn protocols(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter().map(|s| &s.proto)
    }

    /// Messages sent by node `i` so far.
    pub fn node_messages_sent(&self, i: usize) -> u64 {
        self.nodes[i].messages_sent
    }

    /// Messages received by node `i` so far.
    pub fn node_messages_received(&self, i: usize) -> u64 {
        self.nodes[i].messages_received
    }

    /// Runs the network from time zero until quiescence, a stop request,
    /// or a limit; returns the report and the final network state.
    ///
    /// Quiescence means: no messages in flight *and* no node wants ticks.
    pub fn run(self, limits: RunLimits) -> (NetworkReport, Network<P>) {
        let n = self.topo.node_count();
        let mut sim = Simulation::new(self);
        for i in 0..n {
            sim.prime(SimTime::ZERO, NetEvent::Start(i));
        }
        let kernel_report = sim.run(limits);
        let end_time = sim.now();
        let events_processed = sim.events_processed();
        let net = sim.into_world();
        let report = NetworkReport {
            outcome: kernel_report.outcome,
            end_time,
            events_processed,
            messages_sent: net.messages_sent,
            messages_delivered: net.messages_delivered,
            in_flight: net.messages_sent - net.messages_delivered,
            ticks: net.ticks,
            queue_stats: kernel_report.queue_stats,
            counters: net.counters.clone(),
        };
        (report, net)
    }

    /// Dispatches one protocol handler and applies its effects.
    fn dispatch(
        &mut self,
        step: &mut StepCtx<'_, NetEvent<P::Message>>,
        node_index: u32,
        kind: Dispatch<P::Message>,
    ) {
        let node_id = NodeId::new(node_index);
        let out_degree = self.topo.out_degree(node_id);
        let in_degree = self.topo.in_degree(node_id);
        let network_size = self.topo.node_count();

        let (outbox, counters, stop) = {
            let reply_ports = &self.reply_ports[node_index as usize];
            let slot = &mut self.nodes[node_index as usize];
            let local_time = slot.clock.advance_to(step.now());
            let mut ctx = Ctx::new(
                local_time,
                network_size,
                out_degree,
                in_degree,
                reply_ports,
                &mut slot.rng,
            );
            match kind {
                Dispatch::Start => slot.proto.on_start(&mut ctx),
                Dispatch::Tick => slot.proto.on_tick(&mut ctx),
                Dispatch::Message(port, msg) => slot.proto.on_message(port, msg, &mut ctx),
            }
            ctx.into_effects()
        };

        for (port, msg) in outbox {
            self.transmit(step, node_id, port.0, msg);
        }
        for (name, amount) in counters {
            *self.counters.entry(name).or_insert(0) += amount;
        }
        if stop {
            step.request_stop();
        }
        self.sync_tick(step, node_index);
    }

    /// Samples delays and schedules the delivery of one message.
    fn transmit(
        &mut self,
        step: &mut StepCtx<'_, NetEvent<P::Message>>,
        src: NodeId,
        port: usize,
        msg: P::Message,
    ) {
        let edge = self.topo.out_edges(src)[port];
        let channel = &mut self.channels[edge.index()];
        let channel_delay = channel.delay.sample(&mut channel.rng);
        let proc_delay = self.processing.sample(&mut self.proc_rng);
        let mut arrival = step.now() + channel_delay + proc_delay;
        if self.fifo && arrival < channel.last_arrival {
            arrival = channel.last_arrival;
        }
        channel.last_arrival = arrival;
        channel.sent += 1;
        self.messages_sent += 1;
        self.nodes[src.index()].messages_sent += 1;
        step.schedule_at(
            arrival,
            NetEvent::Deliver {
                edge: edge.index() as u32,
                msg,
            },
        );
    }

    /// Ensures the node's tick schedule matches its `wants_tick` state.
    fn sync_tick(&mut self, step: &mut StepCtx<'_, NetEvent<P::Message>>, node_index: u32) {
        let slot = &mut self.nodes[node_index as usize];
        let wants = slot.proto.wants_tick();
        match (wants, slot.tick_token) {
            (true, None) => {
                let stride = slot.proto.tick_stride(&mut slot.rng).max(1);
                // Under wandering drift the rate is re-drawn once per
                // stride; rates stay within the clock bounds throughout.
                let interval = slot
                    .clock
                    .real_interval(self.tick_interval * stride as f64, &mut slot.rng);
                let token = step.schedule_in(interval, NetEvent::Tick(node_index));
                slot.tick_token = Some(token);
            }
            (false, Some(token)) => {
                step.cancel(token);
                slot.tick_token = None;
            }
            _ => {}
        }
    }

    /// Number of messages sent over `edge` so far.
    pub fn edge_messages(&self, edge: EdgeId) -> u64 {
        self.channels[edge.index()].sent
    }
}

impl<P: Protocol> World for Network<P> {
    type Event = NetEvent<P::Message>;

    fn handle(&mut self, step: &mut StepCtx<'_, Self::Event>, event: Self::Event) {
        if let Some(trace) = &mut self.trace {
            let line = match &event {
                NetEvent::Start(i) => format!("start n{i}"),
                NetEvent::Tick(i) => format!("tick n{i}"),
                NetEvent::Deliver { edge, msg } => {
                    let eid = EdgeId_from(*edge);
                    let e = self.topo.edge(eid);
                    format!("deliver {} -> {}: {msg:?}", e.src, e.dst)
                }
            };
            trace.push(step.now(), line);
        }
        match event {
            NetEvent::Start(i) => self.dispatch(step, i, Dispatch::Start),
            NetEvent::Tick(i) => {
                self.nodes[i as usize].tick_token = None;
                self.ticks += 1;
                self.dispatch(step, i, Dispatch::Tick);
            }
            NetEvent::Deliver { edge, msg } => {
                let eid = EdgeId_from(edge);
                let dst = self.topo.edge(eid).dst;
                let port = InPort(self.topo.in_port(eid));
                self.messages_delivered += 1;
                self.nodes[dst.index()].messages_received += 1;
                self.dispatch(step, dst.index() as u32, Dispatch::Message(port, msg));
            }
        }
    }
}

// EdgeId has no public raw constructor (indices are issued by Topology);
// the runtime reconstructs ids from its own events, which always hold
// valid indices for the owned topology.
#[allow(non_snake_case)]
fn EdgeId_from(raw: u32) -> EdgeId {
    // Safety of representation: Topology hands out dense indices starting
    // at zero; NetEvent::Deliver is only constructed from those.
    crate::topology::edge_id_from_raw(raw)
}

impl<P: Protocol + fmt::Debug> fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.channels.len())
            .field("messages_sent", &self.messages_sent)
            .field("messages_delivered", &self.messages_delivered)
            .field("ticks", &self.ticks)
            .finish()
    }
}

#[cfg(test)]
mod tick_tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::delay::Deterministic;
    use crate::protocol::{Ctx, OutPort};
    use crate::Topology;
    use abe_sim::RunLimits;

    /// Ticks `limit` times with a fixed stride, recording tick times.
    #[derive(Debug)]
    struct Strider {
        stride: u64,
        remaining: u32,
        tick_times: Vec<f64>,
    }

    impl Protocol for Strider {
        type Message = ();
        fn on_message(&mut self, _from: InPort, _msg: (), _ctx: &mut Ctx<'_, ()>) {}
        fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.remaining -= 1;
            self.tick_times.push(ctx.local_time());
        }
        fn wants_tick(&self) -> bool {
            self.remaining > 0
        }
        fn tick_stride(&mut self, _rng: &mut Xoshiro256PlusPlus) -> u64 {
            self.stride
        }
    }

    fn run_strider(stride: u64, ticks: u32) -> Vec<f64> {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(1).unwrap())
            .delay(Deterministic::zero())
            .build(|_| Strider {
                stride,
                remaining: ticks,
                tick_times: Vec::new(),
            })
            .unwrap();
        let (report, net) = net.run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        net.node(0).tick_times.clone()
    }

    #[test]
    fn stride_one_ticks_every_interval() {
        let times = run_strider(1, 5);
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn stride_k_ticks_every_k_intervals() {
        let times = run_strider(4, 3);
        assert_eq!(times, vec![4.0, 8.0, 12.0]);
    }

    #[test]
    fn stride_zero_is_clamped_to_one() {
        let times = run_strider(0, 2);
        assert_eq!(times, vec![1.0, 2.0]);
    }

    /// Uses the reply port to bounce a message back where it came from.
    #[derive(Debug)]
    struct Bouncer {
        serve: bool,
        bounces: u32,
        got_back: u32,
    }

    impl Protocol for Bouncer {
        type Message = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if self.serve {
                for p in 0..ctx.out_degree() {
                    ctx.send(OutPort(p), 0);
                }
            }
        }
        fn on_message(&mut self, from: InPort, msg: u32, ctx: &mut Ctx<'_, u32>) {
            if self.serve {
                self.got_back += 1;
            } else if msg < self.bounces {
                let back = ctx.reply_port(from).expect("symmetric topology");
                ctx.send(back, msg + 1);
            }
        }
    }

    #[test]
    fn reply_ports_route_back_to_sender() {
        let net = NetworkBuilder::new(Topology::star(5).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .build(|i| Bouncer {
                serve: i == 0,
                bounces: 1,
                got_back: 0,
            })
            .unwrap();
        let (report, net) = net.run(RunLimits::unbounded());
        assert!(report.outcome.is_quiescent());
        // Hub sent 4, each leaf bounced once back to the hub.
        assert_eq!(net.node(0).got_back, 4);
        assert_eq!(report.messages_sent, 8);
    }

    /// Every event kind advances the local clock before dispatch.
    #[derive(Debug)]
    struct ClockWatcher {
        fire: bool,
        seen: Vec<f64>,
    }

    impl Protocol for ClockWatcher {
        type Message = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.seen.push(ctx.local_time());
            if self.fire {
                ctx.send(OutPort(0), ());
            }
        }
        fn on_message(&mut self, _from: InPort, _msg: (), ctx: &mut Ctx<'_, ()>) {
            self.seen.push(ctx.local_time());
        }
    }

    #[test]
    fn local_time_advances_with_delivery() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(2.5).unwrap())
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        assert_eq!(net.node(0).seen, vec![0.0]);
        assert_eq!(net.node(1).seen, vec![0.0, 2.5]);
    }

    #[test]
    fn edge_message_counters_track_per_channel() {
        let topo = Topology::unidirectional_ring(2).unwrap();
        let edges: Vec<_> = topo.edges().map(|(id, _)| id).collect();
        let net = NetworkBuilder::new(topo)
            .delay(Deterministic::new(1.0).unwrap())
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        assert_eq!(net.edge_messages(edges[0]), 1);
        assert_eq!(net.edge_messages(edges[1]), 0);
    }

    #[test]
    fn tracing_records_events_in_order() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .trace_capacity(64)
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        let lines: Vec<&str> = net.trace().map(|r| r.data.as_str()).collect();
        assert_eq!(lines, vec!["start n0", "start n1", "deliver n0 -> n1: ()"]);
        // Timestamps are monotone.
        let times: Vec<f64> = net.trace().map(|r| r.time.as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tracing_disabled_by_default() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        assert_eq!(net.trace().count(), 0);
    }

    #[test]
    fn trace_capacity_bounds_retention() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .trace_capacity(1)
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        // Only the newest record is retained.
        assert_eq!(net.trace().count(), 1);
        assert_eq!(net.trace().next().unwrap().data, "deliver n0 -> n1: ()");
    }

    #[test]
    fn shared_processing_model_is_applied_per_delivery() {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(2).unwrap())
            .delay(Deterministic::new(1.0).unwrap())
            .processing(Deterministic::new(0.25).unwrap())
            .build(|i| ClockWatcher {
                fire: i == 0,
                seen: Vec::new(),
            })
            .unwrap();
        let (_, net) = net.run(RunLimits::unbounded());
        assert_eq!(net.node(1).seen, vec![0.0, 1.25]);
    }
}
