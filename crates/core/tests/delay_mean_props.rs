//! Property test: every delay model's empirical mean converges to its
//! configured/analytic mean.
//!
//! This is the exact machinery the adversary subsystem's `BudgetAuditor`
//! relies on — per-edge *empirical* means standing in for the expected
//! delay of Definition 1 — so the convergence contract is load-bearing:
//! if a model's `mean()` drifted from what `sample()` actually produces,
//! budget enforcement (and every class-validation check) would silently
//! audit the wrong bound.

use proptest::prelude::*;

use abe_core::delay::{
    Bimodal, DelayModel, Deterministic, Erlang, Exponential, Hyperexponential, LogNormal, Pareto,
    Retransmission, Shifted, Uniform, Weibull,
};
use abe_sim::Xoshiro256PlusPlus;
use rand::SeedableRng;

/// Samples `n` delays and returns their arithmetic mean.
fn empirical_mean(model: &dyn DelayModel, n: u64, seed: u64) -> f64 {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    (0..n)
        .map(|_| model.sample(&mut rng).as_secs())
        .sum::<f64>()
        / n as f64
}

/// Asserts the empirical mean over 50k samples sits within `tol` relative
/// error of the analytic mean.
fn check(model: &dyn DelayModel, seed: u64, tol: f64) -> Result<(), TestCaseError> {
    let analytic = model.mean().as_secs();
    let empirical = empirical_mean(model, 50_000, seed);
    let rel = (empirical - analytic).abs() / analytic.max(1e-12);
    prop_assert!(
        rel < tol,
        "{}: empirical {empirical} vs analytic {analytic} (rel {rel:.4}, seed {seed})",
        model.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bounded-support families: tight tolerance.
    #[test]
    fn bounded_families_mean_converges(
        mean in 0.25f64..4.0,
        spread in 0.0f64..1.0,
        slow_prob in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        check(&Deterministic::new(mean).unwrap(), seed, 1e-9)?;
        check(&Uniform::from_mean(mean, spread).unwrap(), seed, 0.02)?;
        check(&Bimodal::new(mean, mean * 8.0, slow_prob).unwrap(), seed, 0.05)?;
    }

    /// Unbounded light-tailed families (the strictly-ABE core).
    #[test]
    fn light_tailed_families_mean_converges(
        mean in 0.25f64..4.0,
        k in 1u32..8,
        seed in 0u64..1_000_000,
    ) {
        check(&Exponential::from_mean(mean).unwrap(), seed, 0.04)?;
        check(&Erlang::from_mean(k, mean).unwrap(), seed, 0.04)?;
        check(&Shifted::new(0.5, Exponential::from_mean(mean).unwrap()).unwrap(), seed, 0.04)?;
        check(
            &Hyperexponential::new(&[(0.9, mean * 0.5), (0.1, mean * 5.5)]).unwrap(),
            seed,
            0.06,
        )?;
    }

    /// Heavy-tailed families: wider tolerance (variance is large but
    /// finite over the sampled parameter ranges).
    #[test]
    fn heavy_tailed_families_mean_converges(
        mean in 0.5f64..4.0,
        pareto_shape in 2.2f64..4.0,
        weibull_shape in 0.7f64..3.0,
        sigma in 0.1f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        check(&Pareto::from_mean(pareto_shape, mean).unwrap(), seed, 0.10)?;
        check(&Weibull::from_mean(weibull_shape, mean).unwrap(), seed, 0.08)?;
        check(&LogNormal::from_mean(mean, sigma).unwrap(), seed, 0.08)?;
    }

    /// The paper's lossy-channel model: mean is exactly slot/p.
    #[test]
    fn retransmission_mean_converges(
        p in 0.1f64..1.0,
        slot in 0.25f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        check(&Retransmission::new(p, slot).unwrap(), seed, 0.05)?;
    }
}
