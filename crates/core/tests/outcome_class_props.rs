//! Property tests for the [`OutcomeClass`] name round-trip.
//!
//! The stable names are load-bearing in three places — scenario `expect`
//! directives, campaign documents, and sweep JSON — so `from_name` must
//! stay the exact inverse of `as_str` over *every* variant (including the
//! consensus classes), and must reject everything else. Until now only
//! the happy path was exercised; these properties close the gap.

use proptest::prelude::*;

use abe_core::fault::OutcomeClass;

/// Draws one of the variants, uniformly.
fn class_strategy() -> impl Strategy<Value = OutcomeClass> {
    (0..OutcomeClass::ALL.len()).prop_map(|i| OutcomeClass::ALL[i])
}

#[test]
fn every_variant_round_trips_through_its_name() {
    for class in OutcomeClass::ALL {
        assert_eq!(OutcomeClass::from_name(class.as_str()), Some(class));
        // Display and as_str agree (tables and JSON share the vocabulary).
        assert_eq!(class.to_string(), class.as_str());
    }
}

#[test]
fn names_are_pairwise_distinct() {
    for a in OutcomeClass::ALL {
        for b in OutcomeClass::ALL {
            assert_eq!(a.as_str() == b.as_str(), a == b, "{a} vs {b}");
        }
    }
}

proptest! {
    /// `from_name(as_str(c)) == c` for any variant.
    #[test]
    fn round_trip_holds(class in class_strategy()) {
        prop_assert_eq!(OutcomeClass::from_name(class.as_str()), Some(class));
    }

    /// Any string that is not exactly a stable name resolves to `None`:
    /// random words over the name alphabet (lower-case letters and `-`,
    /// the same character set real names use, so near-misses are common)
    /// resolve iff they collide with an actual name.
    #[test]
    fn arbitrary_strings_resolve_only_to_exact_names(
        ids in proptest::collection::vec(0usize..27, 0..24)
    ) {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz-";
        let name: String = ids.into_iter().map(|i| CHARS[i] as char).collect();
        let known = OutcomeClass::ALL.iter().any(|c| c.as_str() == name);
        prop_assert_eq!(OutcomeClass::from_name(&name).is_some(), known, "{}", name);
    }

    /// Decorated variants of real names never resolve.
    #[test]
    fn decorated_names_are_rejected(class in class_strategy()) {
        let name = class.as_str();
        prop_assert_eq!(OutcomeClass::from_name(&name.to_uppercase()), None);
        prop_assert_eq!(OutcomeClass::from_name(&format!(" {name}")), None);
        prop_assert_eq!(OutcomeClass::from_name(&format!("{name} ")), None);
    }
}
