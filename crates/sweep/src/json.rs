//! JSON string primitives shared by everything that renders sweep data.
//!
//! No serde is available in the build container, so documents are rendered
//! by hand; these helpers own the escaping rules so every producer (the
//! engine's [`metrics_json`](crate::SweepOutcome::metrics_json), the
//! `abe-bench` sweep-v1 documents, the `abe-scenario` campaign goldens)
//! escapes identically — a prerequisite for byte-level golden diffs.

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a string as a quoted JSON string literal.
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("αβ"), "αβ");
    }

    #[test]
    fn json_str_quotes() {
        assert_eq!(json_str("δ=1"), "\"δ=1\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
    }
}
