//! # abe-sweep — the parallel deterministic sweep engine
//!
//! Every experiment in this crate is a grid of independent simulation
//! *cells*: the cartesian product of a few configuration axes (algorithm,
//! topology, delay model, ring size, …) times a seed axis. This module
//! turns that shape into infrastructure:
//!
//! * [`SweepSpec`] describes the grid declaratively (axes, repetitions,
//!   base seed, optional combo filter);
//! * [`SweepSpec::expand`] materialises the grid into [`Cell`]s, each
//!   carrying a seed derived by hashing the cell's **grid coordinates**
//!   with the base seed — never its position in a work queue — so results
//!   are bit-identical regardless of worker count or scheduling order;
//! * [`run_sweep`] executes the cells on a pool of `std::thread` workers
//!   pulling indices from a shared [`crossbeam::channel`]; a panicking
//!   cell fails the whole sweep with its grid coordinates in the error;
//! * [`SweepOutcome`] holds per-cell metrics in deterministic grid order,
//!   offers seed-axis aggregation via [`SweepOutcome::groups`], and
//!   renders a byte-stable JSON fragment via
//!   [`SweepOutcome::metrics_json`].
//!
//! The engine is deliberately experiment-agnostic: `abe-bench` builds its
//! hand-written experiments on it, and `abe-scenario` lowers declarative
//! `.abes` scenario files onto the very same [`SweepSpec`]/[`run_sweep`]
//! pair — both produce byte-identical metric blocks at any worker count.
//!
//! ## Example
//!
//! ```
//! use abe_sweep::{run_sweep, CellMetrics, SweepSpec};
//!
//! let spec = SweepSpec::new().axis_u32("n", &[8, 16]).seeds(3);
//! let outcome = run_sweep(&spec, 4, |cell| {
//!     CellMetrics::new().metric("double", f64::from(cell.u32("n")) * 2.0)
//! })
//! .unwrap();
//! assert_eq!(outcome.cells.len(), 6);
//! let groups = outcome.groups();
//! assert_eq!(groups.len(), 2);
//! assert_eq!(groups[0].mean("double"), 16.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use abe_consensus::{BrbOutcome, ConsensusOutcome};
use abe_core::{NetworkReport, Recording};
use abe_election::ElectionOutcome;
use abe_sim::SeedStream;
use abe_statesync::SyncOutcome;
use abe_stats::{Online, Summary};
use crossbeam::channel::{unbounded, RecvTimeoutError};

/// One coordinate value on a sweep axis.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// An unsigned 32-bit coordinate (ring sizes, round counts, …).
    U32(u32),
    /// A floating-point coordinate (activation budgets, loss rates, …).
    F64(f64),
    /// A named coordinate (algorithm, topology, delay family, …).
    Str(String),
}

impl AxisValue {
    /// The value as `u32`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`AxisValue::U32`].
    pub fn as_u32(&self) -> u32 {
        match self {
            AxisValue::U32(v) => *v,
            other => panic!("axis value {other} is not a u32"),
        }
    }

    /// The value as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`AxisValue::F64`].
    pub fn as_f64(&self) -> f64 {
        match self {
            AxisValue::F64(v) => *v,
            other => panic!("axis value {other} is not an f64"),
        }
    }

    /// Renders the value as a JSON scalar.
    fn to_json(&self) -> String {
        match self {
            AxisValue::U32(v) => v.to_string(),
            AxisValue::F64(v) => abe_stats::json_f64(*v),
            AxisValue::Str(s) => json::json_str(s),
        }
    }
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::U32(v) => write!(f, "{v}"),
            AxisValue::F64(v) => write!(f, "{v}"),
            AxisValue::Str(s) => f.write_str(s),
        }
    }
}

/// One named configuration axis of a sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis name, used in cell coordinates, JSON output, and lookups.
    pub name: &'static str,
    /// The axis values, in sweep order.
    pub values: Vec<AxisValue>,
}

/// A read-only view of one grid combination, handed to the spec's filter
/// and per-combo seed-count callbacks during expansion.
#[derive(Debug, Clone, Copy)]
pub struct Coords<'a> {
    axes: &'a [Axis],
    indices: &'a [usize],
}

impl Coords<'_> {
    /// Index of this combination's value on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name.
    pub fn idx(&self, axis: &str) -> usize {
        let pos = self
            .axes
            .iter()
            .position(|a| a.name == axis)
            .unwrap_or_else(|| panic!("unknown sweep axis: {axis}"));
        self.indices[pos]
    }

    /// This combination's value on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name.
    pub fn value(&self, axis: &str) -> &AxisValue {
        let pos = self
            .axes
            .iter()
            .position(|a| a.name == axis)
            .unwrap_or_else(|| panic!("unknown sweep axis: {axis}"));
        &self.axes[pos].values[self.indices[pos]]
    }
}

type CoordsFilter = Box<dyn Fn(&Coords<'_>) -> bool + Send + Sync>;
type SeedsOverride = Box<dyn Fn(&Coords<'_>) -> u64 + Send + Sync>;

/// Declarative description of a sweep grid: the cartesian product of the
/// configured axes, times `seeds` repetitions per combination.
///
/// Build with the fluent `axis_*` / [`seeds`](SweepSpec::seeds) /
/// [`base_seed`](SweepSpec::base_seed) methods; prune invalid
/// combinations with [`filter`](SweepSpec::filter); shrink the seed axis
/// for selected combinations with [`seeds_for`](SweepSpec::seeds_for).
pub struct SweepSpec {
    axes: Vec<Axis>,
    seeds: u64,
    base_seed: u64,
    filter: Option<CoordsFilter>,
    seeds_for: Option<SeedsOverride>,
    telemetry: Option<Recording>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SweepSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepSpec")
            .field("axes", &self.axes)
            .field("seeds", &self.seeds)
            .field("base_seed", &self.base_seed)
            .field("filtered", &self.filter.is_some())
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

impl SweepSpec {
    /// An empty grid: no axes, one seed, base seed 0.
    pub fn new() -> Self {
        Self {
            axes: Vec::new(),
            seeds: 1,
            base_seed: 0,
            filter: None,
            seeds_for: None,
            telemetry: None,
        }
    }

    /// Appends an axis with arbitrary values.
    pub fn axis(mut self, name: &'static str, values: Vec<AxisValue>) -> Self {
        assert!(
            self.axes.iter().all(|a| a.name != name),
            "duplicate sweep axis: {name}"
        );
        self.axes.push(Axis { name, values });
        self
    }

    /// Appends a `u32` axis (ring sizes, round counts, …).
    pub fn axis_u32(self, name: &'static str, values: &[u32]) -> Self {
        self.axis(name, values.iter().map(|&v| AxisValue::U32(v)).collect())
    }

    /// Appends an `f64` axis (activation budgets, probabilities, …).
    pub fn axis_f64(self, name: &'static str, values: &[f64]) -> Self {
        self.axis(name, values.iter().map(|&v| AxisValue::F64(v)).collect())
    }

    /// Appends a string axis (algorithms, topologies, delay families, …).
    pub fn axis_str<S: Into<String> + Clone>(self, name: &'static str, values: &[S]) -> Self {
        self.axis(
            name,
            values
                .iter()
                .map(|v| AxisValue::Str(v.clone().into()))
                .collect(),
        )
    }

    /// Sets the number of seeded repetitions per grid combination.
    pub fn seeds(mut self, seeds: u64) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the base seed mixed into every cell's derived seed.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Installs a combination filter: combinations for which `keep`
    /// returns `false` are dropped at expansion time (before any work is
    /// queued), letting one grid hold several experiment parts with
    /// different valid axis subsets.
    pub fn filter(mut self, keep: impl Fn(&Coords<'_>) -> bool + Send + Sync + 'static) -> Self {
        self.filter = Some(Box::new(keep));
        self
    }

    /// Installs a per-combination repetition override: the seed axis of a
    /// combination is `min(self.seeds, reps(coords))`. Returning 0 drops
    /// the combination entirely.
    pub fn seeds_for(mut self, reps: impl Fn(&Coords<'_>) -> u64 + Send + Sync + 'static) -> Self {
        self.seeds_for = Some(Box::new(reps));
        self
    }

    /// Installs a per-cell telemetry budget: every expanded [`Cell`]
    /// carries a clone of `recording`, and experiment runners that honour
    /// it (via [`Cell::recording`]) record each run under that bounded
    /// budget — typically `Recording::ring(0).histograms(true)` so cells
    /// aggregate deterministic histograms without retaining per-event
    /// records. Recording never perturbs runs, so every other byte of the
    /// sweep's metric block is unchanged by this call.
    pub fn telemetry(mut self, recording: Recording) -> Self {
        self.telemetry = Some(recording);
        self
    }

    /// The configured axes.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Materialises the grid into cells, in deterministic order: the first
    /// axis varies slowest, the seed axis fastest, filtered combinations
    /// skipped. Cell seeds depend only on (coordinates, base seed).
    pub fn expand(&self) -> Vec<Cell> {
        if self.axes.iter().any(|a| a.values.is_empty()) {
            return Vec::new();
        }
        let mut cells = Vec::new();
        let mut indices = vec![0usize; self.axes.len()];
        let seed_root = SeedStream::new(self.base_seed);
        loop {
            let coords = Coords {
                axes: &self.axes,
                indices: &indices,
            };
            let keep = self.filter.as_ref().is_none_or(|f| f(&coords));
            if keep {
                let reps = self
                    .seeds_for
                    .as_ref()
                    .map_or(self.seeds, |f| f(&coords).min(self.seeds));
                let coord_values: Vec<(&'static str, AxisValue)> = self
                    .axes
                    .iter()
                    .zip(&indices)
                    .map(|(axis, &i)| (axis.name, axis.values[i].clone()))
                    .collect();
                // The seed domain is the textual grid coordinate, so the
                // derived seed is a pure function of (coordinates, base
                // seed) — stable under reordering or re-slicing the grid.
                let domain: String = coord_values
                    .iter()
                    .map(|(name, value)| format!("{name}={value}"))
                    .collect::<Vec<_>>()
                    .join(";");
                for rep in 0..reps {
                    cells.push(Cell {
                        index: cells.len(),
                        axis_indices: indices.clone(),
                        coords: coord_values.clone(),
                        rep,
                        seed: seed_root.child_seed(&domain, rep),
                        record: self.telemetry.clone(),
                    });
                }
            }
            // Mixed-radix increment, last axis fastest; when the counter
            // wraps (or there are no axes at all) the grid is exhausted.
            let mut pos = self.axes.len();
            loop {
                if pos == 0 {
                    return cells;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < self.axes[pos].values.len() {
                    break;
                }
                indices[pos] = 0;
            }
        }
    }
}

/// One unit of sweep work: a grid combination plus a seed repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    index: usize,
    axis_indices: Vec<usize>,
    coords: Vec<(&'static str, AxisValue)>,
    rep: u64,
    seed: u64,
    record: Option<Recording>,
}

impl Cell {
    /// Position of this cell in grid expansion order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Index of this cell's value on `axis` (for table lookups).
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name.
    pub fn idx(&self, axis: &str) -> usize {
        let pos = self.coord_pos(axis);
        self.axis_indices[pos]
    }

    /// This cell's value on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name.
    pub fn value(&self, axis: &str) -> &AxisValue {
        let pos = self.coord_pos(axis);
        &self.coords[pos].1
    }

    /// Shorthand for a `u32` coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not `u32`-valued.
    pub fn u32(&self, axis: &str) -> u32 {
        self.value(axis).as_u32()
    }

    /// Shorthand for an `f64` coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not `f64`-valued.
    pub fn f64(&self, axis: &str) -> f64 {
        self.value(axis).as_f64()
    }

    /// The seed-axis position of this cell (0-based repetition number).
    pub fn rep(&self) -> u64 {
        self.rep
    }

    /// The derived seed: `hash(grid coordinates, base seed)`. Feed this to
    /// the simulation under measurement.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sweep's per-cell telemetry budget, when
    /// [`SweepSpec::telemetry`] installed one. Experiment runners pass it
    /// to their config's `record` knob and attach the resulting
    /// histograms via [`CellMetrics::with_hist`].
    pub fn recording(&self) -> Option<&Recording> {
        self.record.as_ref()
    }

    /// Human-readable grid coordinates, e.g. `n=8, delay=exp, rep=3`.
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = self
            .coords
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        parts.push(format!("rep={}", self.rep));
        parts.join(", ")
    }

    fn coord_pos(&self, axis: &str) -> usize {
        self.coords
            .iter()
            .position(|(name, _)| *name == axis)
            .unwrap_or_else(|| panic!("unknown sweep axis: {axis}"))
    }
}

/// The measurements produced by one cell: named `f64` metrics (averaged
/// by [`Group`]s) and named `u64` counters (summed by [`Group`]s).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellMetrics {
    metrics: BTreeMap<&'static str, f64>,
    counters: BTreeMap<&'static str, u64>,
    /// Rendered `abe/hist-v1` JSON document for this cell, when the sweep
    /// recorded telemetry. `None` keeps the metric block byte-identical
    /// to telemetry-free builds.
    hist: Option<String>,
}

impl CellMetrics {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or overwrites) one named metric.
    pub fn metric(mut self, name: &'static str, value: f64) -> Self {
        self.metrics.insert(name, value);
        self
    }

    /// Adds (or overwrites) one named counter.
    pub fn counter(mut self, name: &'static str, value: u64) -> Self {
        self.counters.insert(name, value);
        self
    }

    /// Records the standard per-run telemetry of a [`NetworkReport`]:
    /// kernel events, message totals, ticks, and event-queue activity
    /// (`queue_live` is the events still pending when the run returned —
    /// nonzero when a run stops on a budget rather than quiescing).
    pub fn with_report(self, report: &NetworkReport) -> Self {
        self.counter("events", report.events_processed)
            .counter("msgs_sent", report.messages_sent)
            .counter("msgs_delivered", report.messages_delivered)
            .counter("ticks", report.ticks)
            .counter("queue_scheduled", report.queue_stats.scheduled)
            .counter("queue_cancelled", report.queue_stats.cancelled)
            .counter("queue_popped", report.queue_stats.popped)
            .counter("queue_live", report.queue_stats.live())
    }

    /// Records the fault-injection telemetry of a [`NetworkReport`]
    /// (crash/recovery events, per-cause message losses, storm-stretched
    /// deliveries). Kept separate from [`with_report`](Self::with_report)
    /// so fault-free experiments emit byte-identical JSON to builds that
    /// predate the fault layer.
    pub fn with_faults(self, report: &NetworkReport) -> Self {
        let f = &report.faults;
        self.counter("fault_crashes", f.crashes)
            .counter("fault_recoveries", f.recoveries)
            .counter("fault_dropped_crash", f.dropped_crash)
            .counter("fault_dropped_partition", f.dropped_partition)
            .counter("fault_dropped_random", f.dropped_random)
            .counter("fault_storm_deliveries", f.storm_deliveries)
    }

    /// Records the scheduling-adversary auditor telemetry of a
    /// [`NetworkReport`]: intercepted sends, clamped proposals, the max
    /// per-edge empirical delay mean, and bound violations (always 0 by
    /// the auditor's invariant — surfaced so the JSON *proves* it per
    /// cell). Kept separate from [`with_report`](Self::with_report) so
    /// adversary-free experiments emit byte-identical JSON to builds that
    /// predate the adversary layer.
    pub fn with_adversary(self, report: &NetworkReport) -> Self {
        let a = &report.adversary;
        self.metric("adv_max_edge_mean", a.max_edge_mean)
            .counter("adv_intercepted", a.intercepted)
            .counter("adv_clamped", a.clamped)
            .counter("adv_violations", a.violations)
    }

    /// Records the standard metrics of one election run (messages, virtual
    /// time, ticks, leader count) plus the report telemetry.
    ///
    /// # Panics
    ///
    /// Panics if the run did not terminate within its event budget — the
    /// sweep then fails with this cell's grid coordinates in the error.
    pub fn with_election(self, outcome: &ElectionOutcome) -> Self {
        assert!(
            outcome.terminated,
            "election run did not terminate within its event budget"
        );
        self.metric("messages", outcome.messages as f64)
            .metric("time", outcome.time)
            .metric("ticks", outcome.ticks as f64)
            .metric("leaders", outcome.leaders as f64)
            .with_report(&outcome.report)
    }

    /// Records the four outcome-class indicator metrics of a consensus
    /// run (`decided`/`stalled`/`agreement_violation`/`validity_violation`,
    /// exactly one set to 1) so group means read as class rates.
    fn with_consensus_class(self, class: abe_core::fault::OutcomeClass) -> Self {
        use abe_core::fault::OutcomeClass;
        let ind = |c: OutcomeClass| if class == c { 1.0 } else { 0.0 };
        self.metric("decided", ind(OutcomeClass::Decided))
            .metric("stalled", ind(OutcomeClass::Stalled))
            .metric("agreement_violation", ind(OutcomeClass::AgreementViolation))
            .metric("validity_violation", ind(OutcomeClass::ValidityViolation))
    }

    /// Records the standard metrics of one Ben-Or consensus run: the
    /// outcome-class indicators, the decided-node count, rounds to decide
    /// (max round any node reached), message total, virtual time, plus
    /// the report telemetry. Stalls are *data* here (class rates), not
    /// panics — unlike [`with_election`](Self::with_election), which
    /// asserts termination.
    pub fn with_consensus(self, outcome: &ConsensusOutcome) -> Self {
        self.with_consensus_class(outcome.class())
            .metric("decided_nodes", f64::from(outcome.decided_count()))
            .metric("rounds", outcome.max_round() as f64)
            .metric("messages", outcome.report.messages_sent as f64)
            .metric("time", outcome.time)
            .with_report(&outcome.report)
    }

    /// Records the standard metrics of one reliable-broadcast run: the
    /// outcome-class indicators, the delivered-node count, delivery
    /// latency (last local delivery time — present only when at least one
    /// node delivered), message total, virtual time, plus the report
    /// telemetry.
    pub fn with_brb(self, outcome: &BrbOutcome) -> Self {
        let m = self
            .with_consensus_class(outcome.class())
            .metric("delivered_nodes", f64::from(outcome.delivered_count()))
            .metric("messages", outcome.report.messages_sent as f64)
            .metric("time", outcome.time)
            .with_report(&outcome.report);
        match outcome.latency() {
            Some(latency) => m.metric("latency", latency),
            None => m,
        }
    }

    /// Records the standard metrics of one anti-entropy state-sync run:
    /// the convergence indicator and residual divergence, rounds to
    /// convergence (max gossip rounds any node initiated), data-plane
    /// wire bytes from the engine's payload accounting, the digest/leaf
    /// message split and shipped-entry total, virtual time, plus the
    /// report telemetry. Non-convergence is *data* here (residuals and
    /// the `converged` rate), not a panic.
    pub fn with_sync(self, outcome: &SyncOutcome) -> Self {
        let r = outcome.sync_report();
        self.metric("converged", if r.converged { 1.0 } else { 0.0 })
            .metric("residual_divergence", r.residual_divergence as f64)
            .metric("rounds", r.rounds as f64)
            .metric("wire_bytes", r.wire_bytes as f64)
            .metric("time", r.time)
            .counter("sync_digest_msgs", r.digest_msgs)
            .counter("sync_leaf_msgs", r.leaf_msgs)
            .counter("sync_entries_sent", r.entries_sent)
            .counter("payload_bytes", r.wire_bytes)
            .with_report(&outcome.report)
    }

    /// Attaches the cell's aggregate telemetry histograms: a pre-rendered
    /// `abe/hist-v1` JSON document (see `abe_telemetry::HistogramSink`).
    /// Rendered into the metric block under the cell's `"hist"` key —
    /// only when present, so telemetry-free sweeps stay byte-identical.
    pub fn with_hist(mut self, hist_json: String) -> Self {
        self.hist = Some(hist_json);
        self
    }

    /// The attached histogram document, if any.
    pub fn hist(&self) -> Option<&str> {
        self.hist.as_deref()
    }

    /// Reads one metric back.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// Reads one counter back.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }
}

/// One executed cell: its coordinates plus the measurements it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// What it measured.
    pub metrics: CellMetrics,
}

/// Why a sweep failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A cell's run function panicked; the sweep reports the first
    /// panicking cell in grid order (deterministic under any scheduling).
    CellPanicked {
        /// Expansion index of the failing cell.
        index: usize,
        /// Human-readable grid coordinates of the failing cell.
        coordinates: String,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::CellPanicked {
                index,
                coordinates,
                message,
            } => write!(f, "sweep cell #{index} [{coordinates}] panicked: {message}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// The completed sweep: per-cell measurements in grid order plus engine
/// metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepOutcome {
    /// The grid axes the sweep ran over.
    pub axes: Vec<Axis>,
    /// The base seed every cell seed was derived from.
    pub base_seed: u64,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock duration of the execution phase.
    pub wall_clock: Duration,
    /// Per-cell results, in deterministic grid-expansion order.
    pub cells: Vec<CellResult>,
}

impl SweepOutcome {
    /// Aggregates the seed axis away: cells sharing all non-seed
    /// coordinates form one [`Group`], in grid order.
    pub fn groups(&self) -> Vec<Group<'_>> {
        let mut groups: Vec<Group<'_>> = Vec::new();
        for result in &self.cells {
            match groups.last_mut() {
                Some(last) if last.key == result.cell.axis_indices => last.cells.push(result),
                _ => groups.push(Group {
                    key: result.cell.axis_indices.clone(),
                    cells: vec![result],
                }),
            }
        }
        groups
    }

    /// Finds the group matching the given `(axis name, value index)`
    /// constraints, if any.
    pub fn group_at<'a>(&'a self, want: &[(&str, usize)]) -> Option<Group<'a>> {
        self.groups()
            .into_iter()
            .find(|g| want.iter().all(|&(axis, idx)| g.idx(axis) == idx))
    }

    /// The deterministic metric block: axes, per-cell results, and group
    /// summaries. Byte-identical for identical specs regardless of worker
    /// count — engine metadata (threads, wall clock) is deliberately
    /// excluded.
    pub fn metrics_json(&self) -> String {
        let axes: Vec<String> = self
            .axes
            .iter()
            .map(|axis| {
                let values: Vec<String> = axis.values.iter().map(AxisValue::to_json).collect();
                format!(
                    "{{\"name\":{},\"values\":[{}]}}",
                    json::json_str(axis.name),
                    values.join(",")
                )
            })
            .collect();
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|result| {
                let hist = result
                    .metrics
                    .hist
                    .as_ref()
                    .map(|h| format!(",\"hist\":{h}"))
                    .unwrap_or_default();
                format!(
                    "{{\"coords\":{},\"rep\":{},\"seed\":\"{}\",\"metrics\":{},\"counters\":{}{hist}}}",
                    coords_json(&result.cell.coords),
                    result.cell.rep,
                    result.cell.seed,
                    metrics_only_json(&result.metrics),
                    counters_only_json(&result.metrics),
                )
            })
            .collect();
        let groups: Vec<String> = self.groups().iter().map(Group::to_json).collect();
        format!(
            "{{\"base_seed\":{},\"axes\":[{}],\"cells\":[{}],\"groups\":[{}]}}",
            self.base_seed,
            axes.join(","),
            cells.join(","),
            groups.join(","),
        )
    }
}

fn coords_json(coords: &[(&'static str, AxisValue)]) -> String {
    let fields: Vec<String> = coords
        .iter()
        .map(|(name, value)| format!("{}:{}", json::json_str(name), value.to_json()))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn metrics_only_json(metrics: &CellMetrics) -> String {
    let fields: Vec<String> = metrics
        .metrics
        .iter()
        .map(|(name, value)| format!("{}:{}", json::json_str(name), abe_stats::json_f64(*value)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn counters_only_json(metrics: &CellMetrics) -> String {
    let fields: Vec<String> = metrics
        .counters
        .iter()
        .map(|(name, value)| format!("{}:{value}", json::json_str(name)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Cells sharing every non-seed coordinate, aggregated over the seed axis.
#[derive(Debug, Clone)]
pub struct Group<'a> {
    key: Vec<usize>,
    cells: Vec<&'a CellResult>,
}

impl Group<'_> {
    /// Number of cells (seed repetitions) in the group.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the group is empty (never true for groups from
    /// [`SweepOutcome::groups`]).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Index of the group's value on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name.
    pub fn idx(&self, axis: &str) -> usize {
        self.cells[0].cell.idx(axis)
    }

    /// The group's value on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name.
    pub fn value(&self, axis: &str) -> &AxisValue {
        self.cells[0].cell.value(axis)
    }

    /// Aggregates one metric over the group's cells.
    ///
    /// Cells missing the metric are skipped (useful when grid parts
    /// record different metric sets).
    pub fn online(&self, metric: &str) -> Online {
        self.cells
            .iter()
            .filter_map(|c| c.metrics.get(metric))
            .collect()
    }

    /// Mean of one metric over the group's cells.
    pub fn mean(&self, metric: &str) -> f64 {
        self.online(metric).mean()
    }

    /// Total of one counter over the group's cells.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.cells
            .iter()
            .filter_map(|c| c.metrics.get_counter(name))
            .sum()
    }

    /// Human-readable group coordinates, e.g. `n=8, delay=exp`.
    pub fn label(&self) -> String {
        self.cells[0]
            .cell
            .coords
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn to_json(&self) -> String {
        let metric_names: Vec<&'static str> = self
            .cells
            .iter()
            .flat_map(|c| c.metrics.metrics.keys().copied())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let metrics: Vec<String> = metric_names
            .iter()
            .map(|name| {
                format!(
                    "{}:{}",
                    json::json_str(name),
                    Summary::from(&self.online(name)).to_json()
                )
            })
            .collect();
        let counter_names: Vec<&'static str> = self
            .cells
            .iter()
            .flat_map(|c| c.metrics.counters.keys().copied())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let counters: Vec<String> = counter_names
            .iter()
            .map(|name| format!("{}:{}", json::json_str(name), self.counter_total(name)))
            .collect();
        format!(
            "{{\"coords\":{},\"cells\":{},\"metrics\":{{{}}},\"counters\":{{{}}}}}",
            coords_json(&self.cells[0].cell.coords),
            self.cells.len(),
            metrics.join(","),
            counters.join(","),
        )
    }
}

/// Runs one cell, converting a panic into a printable error payload.
fn run_cell<F>(run: &F, cell: &Cell) -> Result<CellMetrics, String>
where
    F: Fn(&Cell) -> CellMetrics + Send + Sync,
{
    catch_unwind(AssertUnwindSafe(|| run(cell))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Executes every cell of `spec` on up to `threads` workers and collects
/// the results in grid order.
///
/// Workers are plain `std::thread`s pulling cell indices from a shared
/// [`crossbeam::channel`]; with `threads <= 1` the cells run inline on the
/// calling thread. Because each cell's seed is derived from its grid
/// coordinates alone, the outcome's metric block is **bit-identical for
/// any worker count** — only wall clock changes.
///
/// # Errors
///
/// If one or more cells panic, returns [`SweepError::CellPanicked`] for
/// the first failing cell in grid order (not in completion order, which
/// would be racy), with that cell's grid coordinates in the message.
/// After a failure the sweep aborts early: cells at higher grid indices
/// than the lowest observed failure are skipped — they cannot change the
/// reported error, and running them would only waste wall-clock and
/// flood stderr with panic backtraces. Cells at lower indices still run,
/// so an even earlier failure is always found and the reported cell is
/// deterministic for any worker count.
pub fn run_sweep<F>(spec: &SweepSpec, threads: usize, run: F) -> Result<SweepOutcome, SweepError>
where
    F: Fn(&Cell) -> CellMetrics + Send + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let cells = spec.expand();
    let workers = threads.max(1).min(cells.len().max(1));
    let started = Instant::now();
    let mut results: Vec<Option<Result<CellMetrics, String>>> = vec![None; cells.len()];
    // Lowest failing cell index observed so far; cells above it are moot.
    let failed_at = AtomicUsize::new(usize::MAX);

    if workers <= 1 {
        for (i, cell) in cells.iter().enumerate() {
            let outcome = run_cell(&run, cell);
            let aborted = outcome.is_err();
            results[i] = Some(outcome);
            if aborted {
                // Inline execution is already in grid order: nothing after
                // the first failure can beat it.
                break;
            }
        }
    } else {
        let (work_tx, work_rx) = unbounded::<usize>();
        let (result_tx, result_rx) = unbounded::<(usize, Result<CellMetrics, String>)>();
        for i in 0..cells.len() {
            work_tx.send(i).expect("work receiver alive");
        }
        // All work is enqueued up front; dropping the sender lets workers
        // observe a disconnect once the queue drains.
        drop(work_tx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let result_tx = result_tx.clone();
                let cells = &cells;
                let run = &run;
                let failed_at = &failed_at;
                scope.spawn(move || loop {
                    match work_rx.recv_timeout(Duration::MAX) {
                        Ok(i) => {
                            if i > failed_at.load(Ordering::Relaxed) {
                                continue; // moot: an earlier cell already failed
                            }
                            let outcome = run_cell(run, &cells[i]);
                            if outcome.is_err() {
                                failed_at.fetch_min(i, Ordering::Relaxed);
                            }
                            if result_tx.send((i, outcome)).is_err() {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) | Err(RecvTimeoutError::Timeout) => {
                            return
                        }
                    }
                });
            }
            drop(result_tx);
            drop(work_rx);
            // Collect until every worker has exited and dropped its sender.
            while let Ok((i, outcome)) = result_rx.recv_timeout(Duration::MAX) {
                results[i] = Some(outcome);
            }
        });
    }

    let wall_clock = started.elapsed();
    let mut out = Vec::with_capacity(cells.len());
    for (cell, slot) in cells.into_iter().zip(results) {
        // A `None` slot means the cell was skipped after an earlier
        // failure; the error below is returned before any is reached.
        match slot {
            Some(Ok(metrics)) => out.push(CellResult { cell, metrics }),
            Some(Err(message)) => {
                return Err(SweepError::CellPanicked {
                    index: cell.index,
                    coordinates: cell.label(),
                    message,
                })
            }
            None => unreachable!("cell skipped without a preceding failure"),
        }
    }
    Ok(SweepOutcome {
        axes: spec.axes.clone(),
        base_seed: spec.base_seed,
        threads: workers,
        wall_clock,
        cells: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> SweepSpec {
        SweepSpec::new()
            .axis_u32("n", &[8, 16, 32])
            .axis_str("alg", &["a", "b"])
            .seeds(4)
            .base_seed(7)
    }

    fn toy_run(cell: &Cell) -> CellMetrics {
        // A deterministic function of coordinates and derived seed.
        let n = f64::from(cell.u32("n"));
        let alg_bonus = cell.idx("alg") as f64 * 100.0;
        CellMetrics::new()
            .metric("value", n * 2.0 + alg_bonus + (cell.seed() % 7) as f64)
            .counter("events", cell.seed() % 13)
    }

    #[test]
    fn expansion_is_cartesian_with_seed_innermost() {
        let cells = toy_spec().expand();
        assert_eq!(cells.len(), 3 * 2 * 4);
        // First axis slowest, seed fastest.
        assert_eq!(cells[0].u32("n"), 8);
        assert_eq!(cells[0].idx("alg"), 0);
        assert_eq!(cells[0].rep(), 0);
        assert_eq!(cells[3].rep(), 3);
        assert_eq!(cells[4].idx("alg"), 1);
        assert_eq!(cells[8].u32("n"), 16);
        // Indices are dense and sequential.
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index(), i);
        }
    }

    #[test]
    fn empty_spec_yields_one_cell_per_seed() {
        let cells = SweepSpec::new().seeds(3).expand();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[2].rep(), 2);
    }

    #[test]
    fn seeds_depend_on_coordinates_not_position() {
        let full = toy_spec().expand();
        // The same coordinates in a differently-shaped grid (one n
        // sliced away) derive the same seed.
        let sliced = SweepSpec::new()
            .axis_u32("n", &[16, 32])
            .axis_str("alg", &["a", "b"])
            .seeds(4)
            .base_seed(7)
            .expand();
        let full_16a: Vec<u64> = full
            .iter()
            .filter(|c| c.u32("n") == 16 && c.idx("alg") == 0)
            .map(Cell::seed)
            .collect();
        let sliced_16a: Vec<u64> = sliced
            .iter()
            .filter(|c| c.u32("n") == 16 && c.idx("alg") == 0)
            .map(Cell::seed)
            .collect();
        assert_eq!(full_16a, sliced_16a);
        // Different reps and coordinates give different seeds.
        let mut seeds: Vec<u64> = full.iter().map(Cell::seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), full.len(), "cell seeds must be distinct");
    }

    #[test]
    fn base_seed_changes_every_cell_seed() {
        let a = toy_spec().expand();
        let b = toy_spec().base_seed(8).expand();
        assert!(a.iter().zip(&b).all(|(x, y)| x.seed() != y.seed()));
    }

    #[test]
    fn filter_prunes_combinations() {
        let spec = toy_spec().filter(|c| !(c.value("alg").to_string() == "b" && c.idx("n") > 0));
        let cells = spec.expand();
        // alg=b survives only at n=8: (3 + 1) combos × 4 seeds.
        assert_eq!(cells.len(), 16);
        assert!(cells
            .iter()
            .filter(|c| c.idx("alg") == 1)
            .all(|c| c.u32("n") == 8));
        // Seeds of surviving cells are unchanged by the filter.
        let full = toy_spec().expand();
        for cell in &cells {
            let twin = full
                .iter()
                .find(|c| c.axis_indices == cell.axis_indices && c.rep == cell.rep)
                .unwrap();
            assert_eq!(twin.seed(), cell.seed());
        }
    }

    #[test]
    fn seeds_for_caps_repetitions_per_combo() {
        let spec = toy_spec().seeds_for(|c| if c.idx("alg") == 1 { 2 } else { u64::MAX });
        let cells = spec.expand();
        assert_eq!(cells.len(), 3 * 4 + 3 * 2);
        assert!(cells
            .iter()
            .filter(|c| c.idx("alg") == 1)
            .all(|c| c.rep < 2));
    }

    #[test]
    fn sweep_runs_inline_and_parallel_identically() {
        let single = run_sweep(&toy_spec(), 1, toy_run).unwrap();
        let parallel = run_sweep(&toy_spec(), 8, toy_run).unwrap();
        assert_eq!(single.cells, parallel.cells);
        assert_eq!(single.metrics_json(), parallel.metrics_json());
        assert_eq!(single.threads, 1);
        assert!(parallel.threads > 1);
    }

    #[test]
    fn worker_count_is_bounded_by_cell_count() {
        let spec = SweepSpec::new().axis_u32("n", &[1]).seeds(2);
        let outcome = run_sweep(&spec, 64, |cell| {
            CellMetrics::new().metric("n", f64::from(cell.u32("n")))
        })
        .unwrap();
        assert_eq!(outcome.threads, 2);
    }

    #[test]
    fn empty_grid_completes() {
        let spec = SweepSpec::new().axis_u32("n", &[]).seeds(4);
        let outcome = run_sweep(&spec, 4, |_| CellMetrics::new()).unwrap();
        assert!(outcome.cells.is_empty());
        assert!(outcome.groups().is_empty());
        assert!(outcome.metrics_json().contains("\"cells\":[]"));
    }

    #[test]
    fn panicking_cell_fails_with_coordinates() {
        let spec = toy_spec();
        let err = run_sweep(&spec, 4, |cell| {
            assert!(
                !(cell.u32("n") == 16 && cell.rep() == 1),
                "deliberate failure"
            );
            toy_run(cell)
        })
        .unwrap_err();
        let SweepError::CellPanicked {
            coordinates,
            message,
            ..
        } = &err;
        assert!(coordinates.contains("n=16"), "got: {coordinates}");
        assert!(coordinates.contains("rep=1"), "got: {coordinates}");
        assert!(message.contains("deliberate failure"), "got: {message}");
        let rendered = err.to_string();
        assert!(rendered.contains("n=16") && rendered.contains("panicked"));
    }

    #[test]
    fn failure_aborts_remaining_cells() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Inline execution stops right after the first failure...
        let executed = AtomicUsize::new(0);
        let _ = run_sweep(&toy_spec(), 1, |cell| {
            executed.fetch_add(1, Ordering::Relaxed);
            assert!(cell.index() != 5, "boom");
            toy_run(cell)
        })
        .unwrap_err();
        assert_eq!(executed.load(Ordering::Relaxed), 6);

        // ...and parallel workers skip every cell queued after the lowest
        // failing index once it is known (cells 0..=5 must still run; how
        // many of 6..23 slip through before the watermark lands is racy,
        // but all 24 would run without the abort).
        let executed = AtomicUsize::new(0);
        let err = run_sweep(&toy_spec(), 2, |cell| {
            executed.fetch_add(1, Ordering::Relaxed);
            assert!(cell.index() != 5, "boom");
            toy_run(cell)
        })
        .unwrap_err();
        let SweepError::CellPanicked { index, .. } = err;
        assert_eq!(index, 5);
        assert!(executed.load(Ordering::Relaxed) >= 6);
    }

    #[test]
    fn first_failure_in_grid_order_wins() {
        // Two failing cells; the reported one must be the earlier index
        // regardless of which worker finishes first.
        for threads in [1, 8] {
            let err = run_sweep(&toy_spec(), threads, |cell| {
                assert!(cell.index() < 10, "boom at {}", cell.index());
                toy_run(cell)
            })
            .unwrap_err();
            let SweepError::CellPanicked { index, .. } = err;
            assert_eq!(index, 10);
        }
    }

    #[test]
    fn groups_aggregate_the_seed_axis() {
        let outcome = run_sweep(&toy_spec(), 2, toy_run).unwrap();
        let groups = outcome.groups();
        assert_eq!(groups.len(), 6);
        for group in &groups {
            assert_eq!(group.len(), 4);
            // Group mean equals the mean over its own cells.
            let manual: Online = group
                .cells
                .iter()
                .map(|c| c.metrics.get("value").unwrap())
                .collect();
            assert_eq!(group.mean("value"), manual.mean());
            let manual_events: u64 = group
                .cells
                .iter()
                .map(|c| c.metrics.get_counter("events").unwrap())
                .sum();
            assert_eq!(group.counter_total("events"), manual_events);
        }
        // Group order follows grid order.
        assert_eq!(groups[0].value("n").as_u32(), 8);
        assert_eq!(groups[1].idx("alg"), 1);
        assert_eq!(groups[2].value("n").as_u32(), 16);
    }

    #[test]
    fn group_lookup_by_coordinates() {
        let outcome = run_sweep(&toy_spec(), 2, toy_run).unwrap();
        let g = outcome.group_at(&[("n", 2), ("alg", 1)]).unwrap();
        assert_eq!(g.value("n").as_u32(), 32);
        assert_eq!(g.value("alg").to_string(), "b");
        assert!(outcome.group_at(&[("n", 99)]).is_none());
    }

    #[test]
    fn metrics_json_shape() {
        let outcome = run_sweep(&toy_spec().seeds(1), 1, toy_run).unwrap();
        let json = outcome.metrics_json();
        assert!(json.starts_with("{\"base_seed\":7,\"axes\":["));
        assert!(json.contains("{\"name\":\"n\",\"values\":[8,16,32]}"));
        assert!(json.contains("{\"name\":\"alg\",\"values\":[\"a\",\"b\"]}"));
        assert!(json.contains("\"coords\":{\"n\":8,\"alg\":\"a\"}"));
        assert!(json.contains("\"counters\":{\"events\":"));
        assert!(json.contains("\"groups\":["));
        assert!(json.contains("\"mean\":"));
    }

    #[test]
    fn cell_metrics_accessors() {
        let m = CellMetrics::new().metric("x", 1.5).counter("c", 3);
        assert_eq!(m.get("x"), Some(1.5));
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.get_counter("c"), Some(3));
        assert!(metrics_only_json(&m).contains("\"x\":1.5"));
        assert!(counters_only_json(&m).contains("\"c\":3"));
    }

    #[test]
    fn axis_value_accessors_and_display() {
        assert_eq!(AxisValue::U32(8).to_string(), "8");
        assert_eq!(AxisValue::F64(0.5).to_string(), "0.5");
        assert_eq!(AxisValue::Str("ring".into()).to_string(), "ring");
        assert_eq!(AxisValue::U32(8).as_u32(), 8);
        assert_eq!(AxisValue::F64(0.5).as_f64(), 0.5);
    }

    #[test]
    #[should_panic(expected = "duplicate sweep axis")]
    fn duplicate_axis_names_are_rejected() {
        let _ = SweepSpec::new().axis_u32("n", &[1]).axis_u32("n", &[2]);
    }

    #[test]
    #[should_panic(expected = "unknown sweep axis")]
    fn unknown_axis_lookup_panics() {
        let cells = SweepSpec::new().axis_u32("n", &[1]).expand();
        let _ = cells[0].u32("nope");
    }

    #[test]
    fn telemetry_budget_reaches_every_cell() {
        let budget = Recording::ring(0).histograms(true);
        let cells = toy_spec().telemetry(budget.clone()).expand();
        assert!(cells.iter().all(|c| c.recording() == Some(&budget)));
        // Without a budget, cells carry none.
        assert!(toy_spec().expand().iter().all(|c| c.recording().is_none()));
    }

    #[test]
    fn hist_renders_only_when_attached() {
        let spec = toy_spec().seeds(1);
        let plain = run_sweep(&spec, 1, toy_run).unwrap().metrics_json();
        assert!(!plain.contains("\"hist\""));

        let with_hist = run_sweep(&spec, 1, |cell| {
            toy_run(cell).with_hist(format!("{{\"cell\":{}}}", cell.index()))
        })
        .unwrap()
        .metrics_json();
        assert!(with_hist.contains(",\"hist\":{\"cell\":0}"));
        // Everything before the hist keys is byte-identical: stripping the
        // attachments recovers the telemetry-free document exactly.
        let mut stripped = with_hist.clone();
        for i in 0..spec.expand().len() {
            stripped = stripped.replace(&format!(",\"hist\":{{\"cell\":{i}}}"), "");
        }
        assert_eq!(stripped, plain);
    }
}
