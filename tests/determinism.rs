//! End-to-end determinism: identical seeds reproduce identical executions
//! across every layer (kernel, network, algorithms, experiments).

use abe_networks::core::delay::Exponential;
use abe_networks::core::{NetworkBuilder, Topology};
use abe_networks::election::{run_abe_calibrated, run_itai_rodeh, RingConfig};
use abe_networks::sim::RunLimits;
use abe_networks::sync::{GraphSynchronizer, Heartbeat, IrSync, SyncRunner};

#[test]
fn election_runs_are_bit_reproducible() {
    for seed in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
        let a = run_abe_calibrated(&RingConfig::new(48).seed(seed), 1.0);
        let b = run_abe_calibrated(&RingConfig::new(48).seed(seed), 1.0);
        assert_eq!(a.messages, b.messages, "seed={seed}");
        assert_eq!(a.time, b.time, "seed={seed}");
        assert_eq!(a.ticks, b.ticks, "seed={seed}");
        assert_eq!(a.report.counters, b.report.counters, "seed={seed}");
    }
}

#[test]
fn different_seeds_differ() {
    let outcomes: Vec<f64> = (0..10)
        .map(|seed| run_abe_calibrated(&RingConfig::new(48).seed(seed), 1.0).time)
        .collect();
    let distinct: std::collections::BTreeSet<u64> = outcomes.iter().map(|t| t.to_bits()).collect();
    assert!(
        distinct.len() >= 9,
        "seeds should yield distinct executions"
    );
}

#[test]
fn itai_rodeh_reproducible() {
    let a = run_itai_rodeh(&RingConfig::new(32).seed(9));
    let b = run_itai_rodeh(&RingConfig::new(32).seed(9));
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.time, b.time);
}

#[test]
fn synchronizer_runs_reproducible() {
    let run = |seed: u64| {
        let net = NetworkBuilder::new(Topology::torus(4, 4).unwrap())
            .delay(Exponential::from_mean(1.0).unwrap())
            .seed(seed)
            .build(|_| GraphSynchronizer::new(Heartbeat::new(), 20))
            .unwrap();
        let (report, _) = net.run(RunLimits::unbounded());
        (report.messages_sent, report.end_time)
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}

#[test]
fn native_sync_runner_reproducible() {
    let run = |seed: u64| {
        let mut runner = SyncRunner::new(Topology::unidirectional_ring(16).unwrap(), seed, |_| {
            IrSync::new(16).unwrap()
        });
        runner.run(1_000_000)
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn permutations_reproducible() {
    use abe_networks::election::random_permutation;
    assert_eq!(random_permutation(100, 7), random_permutation(100, 7));
    assert_ne!(random_permutation(100, 7), random_permutation(100, 8));
}
