//! Cross-crate integration: election correctness across models, sizes,
//! delay families, clocks, and delivery disciplines.

use std::sync::Arc;

use abe_networks::core::clock::{ClockSpec, DriftMode};
use abe_networks::core::delay::{standard_families, Deterministic, Exponential};
use abe_networks::election::{
    run_abe, run_abe_calibrated, run_chang_roberts, run_fixed, run_itai_rodeh, RingConfig,
};

#[test]
fn unique_leader_across_sizes_and_seeds() {
    for n in [1u32, 2, 3, 5, 8, 17, 33, 64] {
        for seed in 0..8 {
            let outcome = run_abe_calibrated(&RingConfig::new(n).seed(seed), 1.0);
            assert!(outcome.terminated, "n={n} seed={seed}");
            assert_eq!(outcome.leaders, 1, "n={n} seed={seed}");
        }
    }
}

#[test]
fn unique_leader_across_delay_families() {
    // The election must work under every delay family of the model zoo,
    // bounded or not — only the mean matters.
    for (label, delay) in standard_families(2.0) {
        for seed in 0..5 {
            let cfg = RingConfig::new(24).delay(Arc::clone(&delay)).seed(seed);
            let outcome = run_abe_calibrated(&cfg, 1.0);
            assert!(outcome.terminated, "{label} seed={seed}");
            assert_eq!(outcome.leaders, 1, "{label} seed={seed}");
        }
    }
}

#[test]
fn unique_leader_under_clock_drift() {
    for mode in [DriftMode::Fixed, DriftMode::Wander] {
        let clocks = ClockSpec::new(0.25, 4.0, mode).unwrap();
        for seed in 0..8 {
            let cfg = RingConfig::new(32).clocks(clocks).seed(seed);
            let outcome = run_abe_calibrated(&cfg, 1.0);
            assert!(outcome.terminated, "{mode:?} seed={seed}");
            assert_eq!(outcome.leaders, 1, "{mode:?} seed={seed}");
        }
    }
}

#[test]
fn unique_leader_with_fifo_channels() {
    // FIFO is a *stronger* network; correctness must be preserved.
    for seed in 0..8 {
        let outcome = run_abe_calibrated(&RingConfig::new(32).fifo(true).seed(seed), 1.0);
        assert_eq!(outcome.leaders, 1, "seed={seed}");
    }
}

#[test]
fn abd_is_a_special_case_of_abe() {
    // Deterministic delay = a legal ABD network; every algorithm for ABE
    // must in particular work there.
    for seed in 0..8 {
        let cfg = RingConfig::new(32)
            .delay(Arc::new(Deterministic::new(1.0).unwrap()))
            .seed(seed);
        let outcome = run_abe_calibrated(&cfg, 1.0);
        assert_eq!(outcome.leaders, 1, "seed={seed}");
    }
}

#[test]
fn all_election_algorithms_agree_on_uniqueness() {
    let cfg = RingConfig::new(16).seed(42);
    assert_eq!(run_abe(&cfg, 0.3).leaders, 1);
    assert_eq!(run_abe_calibrated(&cfg, 2.0).leaders, 1);
    assert_eq!(run_fixed(&cfg, 0.01).leaders, 1);
    assert_eq!(run_itai_rodeh(&cfg).leaders, 1);
    assert_eq!(run_chang_roberts(&cfg).leaders, 1);
}

#[test]
fn extreme_activation_budgets_still_elect() {
    for seed in 0..5 {
        // Very eager: many collisions, still terminates.
        let eager = run_abe_calibrated(&RingConfig::new(16).seed(seed), 50.0);
        assert_eq!(eager.leaders, 1, "eager seed={seed}");
        // Very lazy: long waits, still terminates.
        let lazy = run_abe_calibrated(&RingConfig::new(16).seed(seed), 0.05);
        assert_eq!(lazy.leaders, 1, "lazy seed={seed}");
        assert!(
            lazy.time > eager.time * 0.1,
            "lazy should not be faster by 10x"
        );
    }
}

#[test]
fn heterogeneous_links_are_supported() {
    // Per-edge delays: half the ring fast, half slow; δ is the max mean.
    use abe_networks::core::delay::SharedDelay;
    use abe_networks::core::{NetworkBuilder, Topology};
    use abe_networks::election::AbeElection;
    use abe_networks::sim::RunLimits;

    let n: u32 = 16;
    let topo = Topology::unidirectional_ring(n).unwrap();
    let delays: Vec<SharedDelay> = (0..topo.edge_count())
        .map(|e| {
            let mean = if e % 2 == 0 { 0.2 } else { 2.0 };
            Arc::new(Exponential::from_mean(mean).unwrap()) as SharedDelay
        })
        .collect();
    for seed in 0..5 {
        let net = NetworkBuilder::new(topo.clone())
            .edge_delays(delays.clone())
            .seed(seed)
            .build(|_| AbeElection::calibrated(n, 1.0).unwrap())
            .unwrap();
        let (report, net) = net.run(RunLimits::unbounded());
        assert!(report.outcome.is_stopped(), "seed={seed}");
        let leaders = net
            .protocols()
            .filter(|p| p.state() == abe_networks::election::ElectionState::Leader)
            .count();
        assert_eq!(leaders, 1, "seed={seed}");
    }
}
