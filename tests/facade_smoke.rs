//! Facade smoke test: the `abe-networks` crate's own re-export surface
//! must be enough to run the paper's headline experiment end-to-end.

use abe_networks::election::{run_abe_calibrated, RingConfig};

/// A 64-node anonymous unidirectional ABE ring elects exactly one leader,
/// for several seeds, through the facade re-exports alone.
#[test]
fn facade_elects_one_leader_on_64_ring_across_seeds() {
    for seed in [1u64, 2, 3] {
        let outcome = run_abe_calibrated(&RingConfig::new(64).seed(seed), 1.0);
        assert!(outcome.terminated, "seed {seed}: election must terminate");
        assert_eq!(outcome.leaders, 1, "seed {seed}: exactly one leader");
        assert!(outcome.time > 0.0, "seed {seed}: non-trivial virtual time");
        assert!(
            outcome.messages > 0,
            "seed {seed}: the ring must exchange messages"
        );
    }
}
