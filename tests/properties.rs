//! Property-based tests (proptest) over the whole stack: algorithm
//! invariants, delay-model laws, kernel ordering, and statistics.

use std::sync::Arc;

use proptest::prelude::*;

use abe_networks::core::delay::{
    DelayModel, Deterministic, Exponential, Hyperexponential, Pareto, Retransmission, Uniform,
};
use abe_networks::core::{NetworkBuilder, Topology};
use abe_networks::election::{AbeElection, ElectionState, RingConfig};
use abe_networks::sim::{EventQueue, RunLimits, SimTime, Xoshiro256PlusPlus};
use abe_networks::stats::Online;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline safety property: for arbitrary ring size, activation
    /// budget, and seed, the election terminates with exactly one leader,
    /// all other nodes non-leader, and hop knowledge never exceeding n.
    #[test]
    fn election_unique_leader_and_bounded_d(
        n in 1u32..40,
        a in 0.05f64..8.0,
        seed in any::<u64>(),
    ) {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(n).unwrap())
            .delay(Exponential::from_mean(1.0).unwrap())
            .seed(seed)
            .build(|_| AbeElection::calibrated(n, a).unwrap())
            .unwrap();
        let (report, net) = net.run(RunLimits::events(3_000_000));
        prop_assert!(report.outcome.is_stopped(), "did not elect within budget");
        let mut leaders = 0;
        for p in net.protocols() {
            if p.state() == ElectionState::Leader {
                leaders += 1;
            }
            prop_assert!(p.d() <= n, "d = {} exceeds n = {n}", p.d());
        }
        prop_assert_eq!(leaders, 1);
        prop_assert_eq!(report.counter("elected"), 1);
        // Conservation: every send is an activation or a forward of some kind.
        let sends = report.counter("activations")
            + report.counter("knockouts")
            + report.counter("forwards");
        prop_assert_eq!(sends, report.messages_sent);
    }

    /// Knockouts are bounded by n-1 (each node goes passive at most once).
    #[test]
    fn knockouts_bounded(n in 2u32..32, seed in any::<u64>()) {
        let outcome = abe_networks::election::run_abe_calibrated(
            &RingConfig::new(n).seed(seed),
            1.0,
        );
        prop_assert!(outcome.report.counter("knockouts") < u64::from(n));
    }

    /// Delay models: samples are finite, non-negative, and respect the
    /// declared support bound.
    #[test]
    fn delay_samples_respect_support(
        mean in 0.01f64..100.0,
        seed in any::<u64>(),
    ) {
        let models: Vec<Arc<dyn DelayModel>> = vec![
            Arc::new(Deterministic::new(mean).unwrap()),
            Arc::new(Uniform::from_mean(mean, 0.5).unwrap()),
            Arc::new(Exponential::from_mean(mean).unwrap()),
            Arc::new(Pareto::from_mean(2.5, mean).unwrap()),
            Arc::new(Hyperexponential::new(&[(0.5, mean), (0.5, mean)]).unwrap()),
        ];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for model in models {
            for _ in 0..200 {
                let s = model.sample(&mut rng);
                prop_assert!(s.as_secs().is_finite());
                prop_assert!(s.as_secs() >= 0.0);
                if let Some(bound) = model.upper_bound() {
                    prop_assert!(s <= bound, "{} sample above bound", model.name());
                }
            }
        }
    }

    /// The retransmission channel's attempts are ≥ 1 and the analytic mean
    /// is slot/p for every valid (p, slot).
    #[test]
    fn retransmission_laws(
        p in 0.01f64..=1.0,
        slot in 0.01f64..10.0,
        seed in any::<u64>(),
    ) {
        let model = Retransmission::new(p, slot).unwrap();
        prop_assert!((model.mean().as_secs() - slot / p).abs() < 1e-9);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(model.sample_attempts(&mut rng) >= 1);
        }
    }

    /// Event queue: popping yields a non-decreasing time sequence and
    /// returns exactly the scheduled events.
    #[test]
    fn queue_is_a_total_order(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            seen.push(i);
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }

    /// Welford matches the naive two-pass computation.
    #[test]
    fn online_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let acc: Online = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((acc.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((acc.sample_variance() - var).abs() <= 1e-6 * var.abs().max(1.0));
    }

    /// Ring topologies: every node has degree 1/1 and the graph is
    /// strongly connected with diameter n-1.
    #[test]
    fn ring_invariants(n in 1u32..200) {
        let ring = Topology::unidirectional_ring(n).unwrap();
        prop_assert_eq!(ring.node_count(), n);
        prop_assert_eq!(ring.edge_count(), n as usize);
        for node in ring.nodes() {
            prop_assert_eq!(ring.out_degree(node), 1);
            prop_assert_eq!(ring.in_degree(node), 1);
        }
        prop_assert!(ring.is_strongly_connected());
        prop_assert_eq!(ring.diameter(), Some(n.saturating_sub(1)));
    }

    /// Seed streams never collide across (domain, index) pairs in
    /// realistic ranges.
    #[test]
    fn seed_stream_injective(master in any::<u64>()) {
        use abe_networks::sim::SeedStream;
        let root = SeedStream::new(master);
        let mut seen = std::collections::HashSet::new();
        for domain in ["node", "channel", "clock"] {
            for i in 0..50u64 {
                prop_assert!(seen.insert(root.child_seed(domain, i)));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The echo wave computes the exact sum on arbitrary connected
    /// symmetric random graphs, for any seed and delay mean.
    #[test]
    fn echo_sums_on_random_graphs(
        n in 2u32..24,
        p in 0.2f64..0.9,
        topo_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        use abe_networks::wave::Echo;
        let mut topo_rng = Xoshiro256PlusPlus::seed_from_u64(topo_seed);
        let topo = match Topology::erdos_renyi_symmetric(n, p, &mut topo_rng, 50) {
            Ok(t) => t,
            Err(_) => return Ok(()), // sparse + unlucky: skip, not a failure
        };
        let net = NetworkBuilder::new(topo)
            .delay(Exponential::from_mean(1.0).unwrap())
            .seed(run_seed)
            .build(|i| Echo::new(i == 0, i as u64 + 1))
            .unwrap();
        let (report, net) = net.run(RunLimits::events(2_000_000));
        prop_assert!(report.outcome.is_stopped());
        let expected: u64 = (1..=u64::from(n)).sum();
        prop_assert_eq!(net.node(0).result(), Some(expected));
    }

    /// Flooding sends exactly one message per edge on any strongly
    /// connected graph.
    #[test]
    fn flood_message_count_is_edge_count(
        n in 2u32..32,
        seed in any::<u64>(),
    ) {
        use abe_networks::wave::Flood;
        let topo = Topology::bidirectional_ring(n).unwrap();
        let edges = topo.edge_count() as u64;
        let net = NetworkBuilder::new(topo)
            .delay(Exponential::from_mean(1.0).unwrap())
            .seed(seed)
            .build(|i| Flood::new(i == 0, 5))
            .unwrap();
        let (report, net) = net.run(RunLimits::unbounded());
        prop_assert_eq!(report.messages_sent, edges);
        prop_assert!(net.protocols().all(|f| f.payload() == Some(5)));
    }

    /// Peterson elects exactly one leader for arbitrary id permutations.
    #[test]
    fn peterson_unique_leader(n in 1u32..24, seed in any::<u64>()) {
        let outcome = abe_networks::election::run_peterson(
            &RingConfig::new(n).seed(seed),
        );
        prop_assert!(outcome.terminated);
        prop_assert_eq!(outcome.leaders, 1);
    }
}
