//! Cross-crate integration: synchronisers on ABE networks vs the native
//! synchronous reference.

use abe_networks::core::delay::{Exponential, Pareto, Uniform};
use abe_networks::core::{NetworkBuilder, Topology};
use abe_networks::sim::RunLimits;
use abe_networks::sync::{
    AbdSynchronizer, Chatter, Flood, GraphSynchronizer, Heartbeat, IrSync, SyncRunner,
};

/// The same pulse algorithm must compute the same thing natively and over
/// the synchroniser on a delay-ridden network.
#[test]
fn synchronized_flood_matches_native_flood() {
    for (name, topo) in [
        ("ring", Topology::bidirectional_ring(10).unwrap()),
        ("torus", Topology::torus(4, 4).unwrap()),
        ("star", Topology::star(9).unwrap()),
    ] {
        // Native reference.
        let mut native = SyncRunner::new(topo.clone(), 0, |i| Flood::new(i == 0));
        native.run(1000);
        let native_rounds: Vec<Option<u64>> = native.protocols().map(|p| p.informed_at()).collect();

        // Over the synchroniser on an ABE network with heavy-tailed delays.
        for seed in 0..3 {
            let net = NetworkBuilder::new(topo.clone())
                .delay(Pareto::from_mean(2.5, 1.0).unwrap())
                .seed(seed)
                .build(|i| GraphSynchronizer::new(Flood::new(i == 0), 64))
                .unwrap();
            let (_, net) = net.run(RunLimits::unbounded());
            let synced: Vec<Option<u64>> = net.protocols().map(|p| p.app().informed_at()).collect();
            assert_eq!(synced, native_rounds, "{name} seed={seed}");
        }
    }
}

/// Synchronous IR elects the same *number* of leaders (exactly one) both
/// natively and over the synchroniser, for the same app seed derivation.
#[test]
fn ir_sync_elects_over_synchronizer() {
    let n = 12u32;
    for seed in 0..5 {
        let net = NetworkBuilder::new(Topology::unidirectional_ring(n).unwrap())
            .delay(Exponential::from_mean(1.0).unwrap())
            .seed(seed)
            .build(|_| GraphSynchronizer::new(IrSync::new(n).unwrap(), 64 * u64::from(n)))
            .unwrap();
        let (report, net) = net.run(RunLimits::events(20_000_000));
        assert!(report.outcome.is_stopped(), "seed={seed}");
        let leaders = net.protocols().filter(|p| p.app().is_leader()).count();
        assert_eq!(leaders, 1, "seed={seed}");
    }
}

/// The graph synchroniser's per-round cost equals the edge count — the
/// Theorem 1 floor (n on a unidirectional ring).
#[test]
fn per_round_cost_is_edge_count() {
    for (topo, expected_per_round) in [
        (Topology::unidirectional_ring(9).unwrap(), 9u64),
        (Topology::bidirectional_ring(9).unwrap(), 18),
        (Topology::complete(5).unwrap(), 20),
    ] {
        let rounds = 30u64;
        let net = NetworkBuilder::new(topo)
            .delay(Uniform::new(0.1, 2.0).unwrap())
            .seed(1)
            .build(|_| GraphSynchronizer::new(Heartbeat::new(), rounds))
            .unwrap();
        let (report, _) = net.run(RunLimits::unbounded());
        assert_eq!(report.messages_sent, expected_per_round * (rounds - 1));
    }
}

/// ABD synchroniser: violation-free on a true ABD network with an ample
/// pulse interval, violating on an ABE network with the same mean delay.
#[test]
fn abd_synchronizer_separates_the_models() {
    let run = |bounded: bool| {
        let builder = NetworkBuilder::new(Topology::unidirectional_ring(8).unwrap())
            .tick_interval(4.0)
            .seed(3);
        let builder = if bounded {
            builder.delay(Uniform::new(0.5, 2.0).unwrap()) // hard bound 2.0
        } else {
            builder.delay(Exponential::from_mean(1.0).unwrap())
        };
        let net = builder
            .build(|_| AbdSynchronizer::new(Chatter, 500))
            .unwrap();
        let (report, _) = net.run(RunLimits::unbounded());
        report.counter("violations")
    };
    assert_eq!(
        run(true),
        0,
        "bounded delay must be violation-free at 4x the bound"
    );
    assert!(run(false) > 0, "unbounded delay must violate eventually");
}

/// Everyone pulses the same number of times: no node can run away from a
/// slower neighbour under the graph synchroniser.
#[test]
fn pulses_stay_in_lockstep() {
    let rounds = 25u64;
    let net = NetworkBuilder::new(Topology::torus(3, 3).unwrap())
        .delay(Exponential::from_mean(1.0).unwrap())
        .seed(8)
        .build(|_| GraphSynchronizer::new(Heartbeat::new(), rounds))
        .unwrap();
    let (_, net) = net.run(RunLimits::unbounded());
    for p in net.protocols() {
        assert_eq!(p.rounds_fired(), rounds);
        assert_eq!(p.app().pulses(), rounds);
    }
}
