//! Offline stand-in for the `rand` crate.
//!
//! The build container for this workspace has no network access, so the
//! `rand` dependency is satisfied by this in-repo shim exposing exactly the
//! trait layer the workspace uses: [`TryRng`] (fallible core), [`Rng`]
//! (infallible core, blanket-implemented for infallible [`TryRng`]s),
//! [`RngExt`] (`random` / `random_range` / `random_bool`), and
//! [`SeedableRng`]. All generators in the workspace are defined in
//! `abe-sim`; this crate contains no generator of its own, so swapping the
//! shim for the real crates.io release only changes the trait paths.
//!
//! # Examples
//!
//! ```
//! use rand::{Rng, RngExt, SeedableRng, TryRng};
//!
//! /// A counting "generator" — good enough to exercise the trait layer.
//! struct Counter(u64);
//!
//! impl TryRng for Counter {
//!     type Error = core::convert::Infallible;
//!     fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
//!         Ok((self.try_next_u64()? >> 32) as u32)
//!     }
//!     fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
//!         self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
//!         Ok(self.0)
//!     }
//!     fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
//!         rand::fill_bytes_via_next(self, dest);
//!         Ok(())
//!     }
//! }
//!
//! impl SeedableRng for Counter {
//!     type Seed = [u8; 8];
//!     fn from_seed(seed: Self::Seed) -> Self {
//!         Counter(u64::from_le_bytes(seed))
//!     }
//! }
//!
//! let mut a = Counter::seed_from_u64(7);
//! let mut b = Counter::seed_from_u64(7);
//! assert_eq!(a.random::<u64>(), b.random::<u64>());
//! assert!(a.random_range(0..10u32) < 10);
//! let _coin: bool = b.random_bool(0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::convert::Infallible;
use core::ops::{Range, RangeInclusive};

/// A fallible random number generator: the core trait every generator in
/// the workspace implements.
pub trait TryRng {
    /// The error type returned by a failed draw (workspace generators use
    /// [`Infallible`]).
    type Error;

    /// Returns the next 32 random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Returns the next 64 random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dest` with random bytes.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible random number generator.
///
/// Blanket-implemented for every [`TryRng`] whose error is [`Infallible`],
/// so workspace generators get it for free.
pub trait Rng {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T: TryRng<Error = Infallible>> Rng for T {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        unwrap_infallible(self.try_next_u32())
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        unwrap_infallible(self.try_next_u64())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        unwrap_infallible(self.try_fill_bytes(dest));
    }
}

#[inline]
fn unwrap_infallible<T>(r: Result<T, Infallible>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Fills `dest` from repeated `try_next_u64` calls — a helper for
/// implementing [`TryRng::try_fill_bytes`].
pub fn fill_bytes_via_next<R: TryRng<Error = Infallible> + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    let mut i = 0;
    while i < dest.len() {
        let word = unwrap_infallible(rng.try_next_u64()).to_le_bytes();
        let n = (dest.len() - i).min(8);
        dest[i..i + n].copy_from_slice(&word[..n]);
        i += n;
    }
}

/// Convenience draws on top of [`Rng`]: typed uniform values, ranges, and
/// Bernoulli coins. Blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniformly distributed value of type `T`.
    ///
    /// Integers are uniform over their whole domain, `f64`/`f32` over
    /// `[0, 1)`, and `bool` is a fair coin.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: Rng> RngExt for T {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)` (high 53 bits).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable uniformly over a canonical domain via
/// [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for i128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardUniform for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges drawable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = u64::from(self.end - self.start);
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = u64::from(hi - lo) + 1;
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32);

macro_rules! sample_range_wide_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}
sample_range_wide_uint!(u64, usize);

macro_rules! sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let x = self.start + u * (self.end - self.start);
                // Float rounding (f64→f32 narrowing, or round-to-even on
                // power-of-two spans) can land exactly on `end`; keep the
                // half-open contract by stepping just below it.
                if x >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    x
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Scale by the half-open unit draw; the closed upper end is
                // hit only up to rounding, which matches rand's behaviour
                // closely enough for simulation parameters.
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Draws a uniform value in `[0, span)` using the multiply-shift method
/// (bias ≤ `span / 2^64`, negligible for simulation-sized spans).
#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (any `u64` — including 0 — yields a valid seed).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl TryRng for Lcg {
        type Error = Infallible;
        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((unwrap_infallible(self.try_next_u64()) >> 32) as u32)
        }
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Ok(self.0)
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            fill_bytes_via_next(self, dest);
            Ok(())
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = Lcg::seed_from_u64(42);
        let mut b = Lcg::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = Lcg::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = Lcg::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(1..=6);
            assert!((1..=6).contains(&y));
            let z: usize = rng.random_range(0..=0);
            assert_eq!(z, 0);
            let f: f64 = rng.random_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let s: i64 = rng.random_range(-10..=10);
            assert!((-10..=10).contains(&s));
        }
    }

    #[test]
    fn random_range_covers_the_support() {
        let mut rng = Lcg::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = Lcg::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = Lcg::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fill_bytes_handles_partial_words() {
        let mut rng = Lcg::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn exclusive_float_range_never_returns_the_end() {
        // f64→f32 narrowing rounds u ∈ (1 − 2⁻²⁵, 1) up to 1.0; the result
        // must still stay strictly below the exclusive upper bound.
        let mut rng = Lcg::seed_from_u64(7);
        for _ in 0..2_000_000 {
            let x: f32 = rng.random_range(0.0f32..1.0);
            assert!(x < 1.0, "exclusive range returned its end");
        }
        // Power-of-two f64 span: round-to-even can hit the span exactly.
        for _ in 0..100_000 {
            let x: f64 = rng.random_range(0.0f64..2.0);
            assert!(x < 2.0);
        }
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = Lcg::seed_from_u64(6);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: i64 = rng.random_range(i64::MIN..=i64::MAX);
    }
}
