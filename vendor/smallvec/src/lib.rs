//! Offline stand-in for the `smallvec` crate.
//!
//! The build container has no network access, so this shim provides the
//! subset of the `smallvec` API the workspace uses: a vector that stores up
//! to `N` elements **inline** (no heap allocation) and spills to a `Vec`
//! only when it grows past its inline capacity. The point is the same as
//! the real crate's: hot paths that usually carry a handful of elements
//! (e.g. the messages a protocol handler sends per event) never touch the
//! allocator.
//!
//! Differences from the real crate, accepted for simplicity and to stay
//! within `#![forbid(unsafe_code)]`:
//!
//! * inline storage is `[Option<T>; N]`, so there is a small per-slot
//!   discriminant overhead;
//! * `SmallVec` does not `Deref` to `[T]`; use [`SmallVec::iter`],
//!   [`SmallVec::into_iter`](struct.SmallVec.html#method.into_iter), or
//!   [`SmallVec::into_vec`] instead.
//!
//! # Example
//!
//! ```
//! use smallvec::SmallVec;
//!
//! let mut v: SmallVec<[u32; 4]> = SmallVec::new();
//! for i in 0..3 {
//!     v.push(i);
//! }
//! assert!(!v.spilled()); // still inline
//! assert_eq!(v.into_vec(), vec![0, 1, 2]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

/// Backing-array marker implemented for `[T; N]`, so the type reads as
/// `SmallVec<[T; N]>` like the real crate.
pub trait Array {
    /// Element type.
    type Item;
    /// Inline buffer type (implementation detail).
    #[doc(hidden)]
    type Buf: Buffer<Self::Item>;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    type Buf = [Option<T>; N];
}

/// Operations the inline buffer must support (implementation detail).
#[doc(hidden)]
pub trait Buffer<T> {
    /// An all-empty buffer.
    fn empty() -> Self;
    /// The option slots, mutably.
    fn slots_mut(&mut self) -> &mut [Option<T>];
    /// The option slots.
    fn slots(&self) -> &[Option<T>];
}

impl<T, const N: usize> Buffer<T> for [Option<T>; N] {
    fn empty() -> Self {
        [(); N].map(|_| None)
    }
    fn slots_mut(&mut self) -> &mut [Option<T>] {
        self
    }
    fn slots(&self) -> &[Option<T>] {
        self
    }
}

enum Repr<A: Array> {
    Inline { buf: A::Buf, len: usize },
    Heap(Vec<A::Item>),
}

/// A vector storing up to `N` elements inline, spilling to the heap past
/// that: `SmallVec<[T; N]>`.
pub struct SmallVec<A: Array> {
    repr: Repr<A>,
}

impl<A: Array> SmallVec<A> {
    /// An empty vector using inline storage.
    pub fn new() -> Self {
        SmallVec {
            repr: Repr::Inline {
                buf: A::Buf::empty(),
                len: 0,
            },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the vector has spilled to heap storage.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Appends an element, spilling to the heap if the inline buffer is
    /// full.
    pub fn push(&mut self, value: A::Item) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                let slots = buf.slots_mut();
                if *len < slots.len() {
                    slots[*len] = Some(value);
                    *len += 1;
                } else {
                    let mut vec: Vec<A::Item> = Vec::with_capacity(slots.len() * 2 + 1);
                    for slot in slots.iter_mut() {
                        vec.extend(slot.take());
                    }
                    vec.push(value);
                    self.repr = Repr::Heap(vec);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element, if any.
    pub fn pop(&mut self) -> Option<A::Item> {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    buf.slots_mut()[*len].take()
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Removes all elements, keeping the storage mode.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                for slot in buf.slots_mut()[..*len].iter_mut() {
                    *slot = None;
                }
                *len = 0;
            }
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Iterates over the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &A::Item> {
        let (slots, vec) = match &self.repr {
            Repr::Inline { buf, len } => (&buf.slots()[..*len], &[][..]),
            Repr::Heap(v) => (&[][..], v.as_slice()),
        };
        slots
            .iter()
            .map(|s| s.as_ref().expect("slot below len is filled"))
            .chain(vec.iter())
    }

    /// Converts into a plain `Vec`, allocating only if still inline.
    pub fn into_vec(self) -> Vec<A::Item> {
        match self.repr {
            Repr::Inline { mut buf, len } => {
                let mut vec = Vec::with_capacity(len);
                for slot in buf.slots_mut()[..len].iter_mut() {
                    vec.extend(slot.take());
                }
                vec
            }
            Repr::Heap(v) => v,
        }
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        let mut v = Self::new();
        v.extend(iter);
        v
    }
}

/// Owning iterator over a [`SmallVec`].
pub struct IntoIter<A: Array> {
    repr: IntoIterRepr<A>,
}

enum IntoIterRepr<A: Array> {
    Inline {
        buf: A::Buf,
        next: usize,
        len: usize,
    },
    Heap(std::vec::IntoIter<A::Item>),
}

impl<A: Array> Iterator for IntoIter<A> {
    type Item = A::Item;

    fn next(&mut self) -> Option<A::Item> {
        match &mut self.repr {
            IntoIterRepr::Inline { buf, next, len } => {
                if next < len {
                    let item = buf.slots_mut()[*next].take();
                    *next += 1;
                    item
                } else {
                    None
                }
            }
            IntoIterRepr::Heap(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.repr {
            IntoIterRepr::Inline { next, len, .. } => len - next,
            IntoIterRepr::Heap(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl<A: Array> ExactSizeIterator for IntoIter<A> {}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = IntoIter<A>;

    fn into_iter(self) -> IntoIter<A> {
        IntoIter {
            repr: match self.repr {
                Repr::Inline { buf, len } => IntoIterRepr::Inline { buf, next: 0, len },
                Repr::Heap(v) => IntoIterRepr::Heap(v.into_iter()),
            },
        }
    }
}

impl<A: Array> fmt::Debug for IntoIter<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntoIter").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_below_capacity() {
        let mut v: SmallVec<[u32; 4]> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: SmallVec<[u32; 2]> = SmallVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.into_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn into_iter_drains_both_modes() {
        let inline: SmallVec<[u32; 4]> = (0..3).collect();
        assert_eq!(inline.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let spilled: SmallVec<[u32; 2]> = (0..6).collect();
        assert_eq!(
            spilled.into_iter().collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pop_and_clear() {
        let mut v: SmallVec<[u32; 2]> = SmallVec::new();
        assert_eq!(v.pop(), None);
        v.push(1);
        v.push(2);
        assert_eq!(v.pop(), Some(2));
        v.push(3);
        v.push(4); // spill
        assert_eq!(v.pop(), Some(4));
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn works_with_non_clone_items() {
        struct NoClone(String);
        let mut v: SmallVec<[NoClone; 2]> = SmallVec::new();
        v.push(NoClone("a".into()));
        v.push(NoClone("b".into()));
        v.push(NoClone("c".into()));
        let items: Vec<String> = v.into_iter().map(|x| x.0).collect();
        assert_eq!(items, vec!["a", "b", "c"]);
    }

    #[test]
    fn debug_formats_as_list() {
        let v: SmallVec<[u32; 4]> = (0..2).collect();
        assert_eq!(format!("{v:?}"), "[0, 1]");
    }

    #[test]
    fn default_is_empty_inline() {
        let v: SmallVec<[u8; 3]> = SmallVec::default();
        assert!(v.is_empty());
        assert!(!v.spilled());
        assert_eq!(v.into_vec(), Vec::<u8>::new());
    }
}
