//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no network access, so the `crossbeam` dependency
//! of `abe-live` is satisfied by this shim: an unbounded MPMC channel
//! ([`channel::unbounded`]) with clonable senders *and* receivers, blocking
//! receive with timeout, and the same disconnect semantics the real crate
//! has (a receive on an empty channel whose senders are all gone reports
//! [`channel::RecvTimeoutError::Disconnected`]). Built on
//! `std::sync::{Mutex, Condvar}`; throughput is far below real crossbeam,
//! which is fine for the thread-per-node demonstration runtime.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded FIFO channel; both halves are clonable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The channel stayed empty for the whole timeout.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers so they can observe the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, every sender disconnects, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            // Huge timeouts (e.g. `Duration::MAX` as a block-forever
            // sentinel) would overflow `Instant + Duration`; treat an
            // unrepresentable deadline as "wait indefinitely".
            let deadline = Instant::now().checked_add(timeout);
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let wait = match deadline {
                    Some(deadline) if now >= deadline => {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    Some(deadline) => deadline - now,
                    // No representable deadline: wake periodically so the
                    // loop still observes disconnects promptly.
                    None => Duration::from_secs(3600),
                };
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(state, wait)
                    .expect("channel poisoned");
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_within_a_single_producer() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(i));
            }
        }

        #[test]
        fn timeout_on_empty_channel() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(err, Err(RecvTimeoutError::Timeout));
            drop(tx);
        }

        #[test]
        fn disconnect_when_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let producer = thread::spawn(move || {
                for i in 0..1000u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 1000 {
                got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
            }
            producer.join().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn max_duration_timeout_does_not_overflow() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::MAX), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::MAX),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv_timeout(Duration::from_secs(1)).unwrap();
            let b = rx2.recv_timeout(Duration::from_secs(1)).unwrap();
            let mut both = [a, b];
            both.sort_unstable();
            assert_eq!(both, [1, 2]);
        }
    }
}
