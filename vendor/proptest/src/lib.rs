//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the property tests in
//! this workspace run on this shim instead of the real crate. It keeps the
//! same authoring surface — the [`proptest!`] macro, [`prop_assert!`] /
//! [`prop_assert_eq!`], [`Strategy`] with [`Strategy::prop_map`],
//! [`prop_oneof!`], [`Just`], [`any`], range strategies, and
//! `prop::collection::vec` — but replaces proptest's engine with plain
//! deterministic random sampling:
//!
//! * each test case's inputs are drawn from a SplitMix64 stream seeded by
//!   the test's module path and case index, so failures are reproducible
//!   run-to-run and machine-to-machine;
//! * there is **no shrinking** — a failing case reports its inputs
//!   verbatim (`Debug`-formatted) and panics.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! // In a test module each function would also carry `#[test]`; that
//! // attribute would strip the function from this doctest build, so it is
//! // omitted here and the property is invoked directly instead.
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     fn addition_commutes(a in 0u32..1000, b in any::<u32>()) {
//!         prop_assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::{self, Debug};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration: how many random cases to run.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case; created by the
/// [`prop_assert!`]-family macros and turned into a panic by the
/// [`proptest!`] harness.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic source all strategies draw from (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream for one `(test, case)` pair: FNV-1a over the test
    /// name mixed with the case index, so every case is reproducible.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes every drawn value with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn pick(&self, rng: &mut TestRng) -> V {
        (**self).pick(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> S::Value {
        (**self).pick(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternative strategies; built by
/// [`prop_oneof!`].
pub struct OneOf<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        OneOf { choices }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;

    fn pick(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].pick(rng)
    }
}

impl<V> Debug for OneOf<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneOf({} choices)", self.choices.len())
    }
}

/// Types with a canonical whole-domain strategy, reachable via [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

/// Whole-domain strategy for `A` (`any::<u64>()`, …).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn pick(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let x = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // Float rounding can land exactly on `end`; keep the
                // half-open contract by stepping just below it.
                if x >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    x
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Debug, Range, RangeInclusive, Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fails the current case (with `format!`-style arguments) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal, reporting
/// both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice among alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// real proptest) running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::__proptest_impl! {
            ($crate::ProptestConfig::default());
            $(#[$meta])*
            fn $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`] — one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); ) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(test_name, case);
                $(let $arg = $crate::Strategy::pick(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {case}/{total} failed: {err}\n  inputs: {inputs}",
                        case = case,
                        total = config.cases,
                        err = err,
                        inputs = inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(f64),
        Grid(usize),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn int_ranges_respect_bounds(a in 3u32..17, b in 1i64..=6, c in any::<u64>()) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=6).contains(&b));
            prop_assert_eq!(c, c);
        }

        #[test]
        fn float_ranges_respect_bounds(x in 0.25f64..4.0, y in 0.0f64..=1.0) {
            prop_assert!((0.25..4.0).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(xs in prop::collection::vec(0.0f64..1.0, 2..9)) {
            prop_assert!((2..9).contains(&xs.len()));
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(shape in prop_oneof![
            Just(Shape::Dot),
            (0.5f64..2.0).prop_map(Shape::Line),
            (1usize..5).prop_map(Shape::Grid),
        ]) {
            match shape {
                Shape::Dot => {}
                Shape::Line(w) => prop_assert!((0.5..2.0).contains(&w)),
                Shape::Grid(n) => prop_assert!((1..5).contains(&n)),
            }
        }

        #[test]
        fn early_ok_return_is_allowed(n in 0u32..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_and_case() {
        let mut a = TestRng::for_case("same::name", 3);
        let mut b = TestRng::for_case("same::name", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("same::name", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            #[allow(unused)]
            fn always_fails(n in 0u32..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
