//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so `abe-bench`'s criterion
//! dependency is satisfied by this shim. It implements the subset of the
//! API the benches use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`] — with a plain wall-clock measurement loop: warm up
//! for `warm_up_time`, then take `sample_size` samples within
//! `measurement_time` and report mean / best per-iteration latency (plus
//! derived throughput). No statistics engine, no plots, no baselines; for
//! publication-grade numbers swap in the real crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmark result.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate unit attached to a benchmark, used to derive throughput from
/// the measured time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Uses the parameter alone as the identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to every benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the wall-clock budget for the untimed warm-up.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let cfg = self.clone();
        run_one(&cfg, name, None, f);
    }
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work rate of subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        let cfg = self.criterion.clone();
        run_one(&cfg, &label, self.throughput, f);
    }

    /// Runs a benchmark that borrows a per-parameter input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        let cfg = self.criterion.clone();
        run_one(&cfg, &label, self.throughput, |b| f(b, input));
    }

    /// Finishes the group (kept for API compatibility; reporting here is
    /// incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warm-up: repeat single iterations until the budget elapses, tracking
    // the per-iteration estimate for batch sizing.
    let warm_start = Instant::now();
    let mut estimate = Duration::ZERO;
    let mut warm_iters = 0u64;
    loop {
        bencher.iters = 1;
        f(&mut bencher);
        estimate += bencher.elapsed;
        warm_iters += 1;
        if warm_start.elapsed() >= cfg.warm_up_time {
            break;
        }
    }
    let per_iter_estimate = (estimate / warm_iters.max(1) as u32).max(Duration::from_nanos(1));

    // Size each sample so all samples together fit the measurement budget.
    let per_sample = cfg.measurement_time / cfg.sample_size.min(u32::MAX as usize) as u32;
    let batch = (per_sample.as_nanos() / per_iter_estimate.as_nanos().max(1))
        .clamp(1, u128::from(u64::MAX)) as u64;

    // Iteration counts can exceed u32, so per-iteration times are derived
    // in u128 nanoseconds rather than with `Duration / u32`.
    let per_iter = |elapsed: Duration, iters: u64| -> Duration {
        let nanos = elapsed.as_nanos() / u128::from(iters.max(1));
        Duration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64)
    };

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut best = Duration::MAX;
    let run_start = Instant::now();
    for _ in 0..cfg.sample_size {
        bencher.iters = batch;
        f(&mut bencher);
        total += bencher.elapsed;
        total_iters += batch;
        best = best.min(per_iter(bencher.elapsed, batch));
        if run_start.elapsed() >= cfg.measurement_time {
            break;
        }
    }

    let mean = per_iter(total, total_iters);
    let rate = |per_iter: Duration| -> String {
        match throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!(" ({:.3} Melem/s)", n as f64 / per_iter.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!(
                    " ({:.3} MiB/s)",
                    n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        }
    };
    println!(
        "bench: {label:<50} mean {mean:>12?}{} best {best:>12?}{} [{total_iters} iters]",
        rate(mean),
        rate(best),
    );
}

/// Declares a group of benchmark functions plus the harness configuration
/// used to run them. Both the plain and the `name`/`config`/`targets`
/// forms of the real macro are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u64;
        fast().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_with_input_and_throughput() {
        let mut c = fast();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            b.iter(|| {
                seen += n;
                n * 2
            })
        });
        group.finish();
        assert!(seen >= 4);
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    criterion_group!(plain_group, noop_bench);
    criterion_group!(
        name = configured_group;
        config = Criterion::default()
            .sample_size(1)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = noop_bench
    );

    fn noop_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("noop");
        group.bench_function("id", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn both_macro_forms_expand_and_run() {
        plain_group();
        configured_group();
    }
}
