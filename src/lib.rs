//! # abe-networks — asynchronous bounded expected delay networks
//!
//! A complete implementation of the network model, election algorithm, and
//! synchroniser results of *Bakhshi, Endrullis, Fokkink, Pang —
//! "Brief Announcement: Asynchronous Bounded Expected Delay Networks",
//! PODC 2010*, together with the simulation substrate, classic baselines,
//! and the evaluation harness that regenerates every experiment.
//!
//! ## The model in one paragraph
//!
//! An **ABE network** strengthens the asynchronous model with three known
//! bounds (Definition 1): `δ` on the *expected* message delay, `[s_low,
//! s_high]` on local clock speeds, and `γ` on the expected processing time
//! of a local event. Unlike **ABD** networks (hard delay bound), every
//! asynchronous execution is still possible — extremely long delays are
//! merely improbable. The model captures lossy channels (expected delay
//! `slot/p` under retransmission), queueing spikes, and dynamic routing,
//! and yet suffices for *efficient* algorithms: anonymous unidirectional
//! rings elect a leader in expected linear time with expected linearly
//! many messages, beating the `Ω(n log n)` bound of asynchronous rings.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Contents |
//! |--------------------|-------|----------|
//! | [`sim`] | `abe-sim` | deterministic discrete-event kernel, PRNG streams |
//! | [`core`](mod@core) | `abe-core` | delay/clock/processing models, topologies, protocol API, network runtime |
//! | [`adversary`] | `abe-adversary` | budgeted scheduling adversaries (Definition 1's adversarial-delay clause) |
//! | [`election`] | `abe-election` | the paper's §3 algorithm, ablation, Itai–Rodeh and Chang–Roberts baselines |
//! | [`consensus`] | `abe-consensus` | Ben-Or binary consensus, Bracha reliable broadcast, BV-broadcast on complete ABE graphs |
//! | [`statesync`] | `abe-statesync` | anti-entropy state sync: versioned stores, Merkle-style digest trees, convergence-classified runners |
//! | [`sync`] | `abe-sync` | graph synchroniser (Theorem 1 floor), ABD synchroniser + violation counting, synchronous Itai–Rodeh |
//! | [`stats`] | `abe-stats` | online moments, complexity-class fitting, tables |
//! | [`telemetry`] | `abe-telemetry` | typed trace events, deterministic histograms, `trace-v1` JSONL, trace analysis |
//! | [`wave`] | `abe-wave` | flooding broadcast and echo/PIF convergecast waves |
//! | [`live`] | `abe-live` | thread-per-node live runtime (crossbeam channels, wall-clock delays) |
//! | [`scenario`] | `abe-scenario` | `.abes` scenario language: parser, compiler, golden-campaign runner, fuzz generator |
//!
//! ## Quickstart
//!
//! ```
//! use abe_networks::election::{run_abe_calibrated, RingConfig};
//!
//! // Elect a leader on an anonymous unidirectional ABE ring of 64 nodes.
//! let outcome = run_abe_calibrated(&RingConfig::new(64).seed(2026), 1.0);
//! assert!(outcome.terminated);
//! assert_eq!(outcome.leaders, 1);
//! println!(
//!     "elected in {:.1} time units with {} messages",
//!     outcome.time, outcome.messages
//! );
//! ```
//!
//! See `examples/` for richer scenarios (lossy channels, sensor grids,
//! synchroniser comparisons) and `crates/bench` for the experiment harness
//! behind `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use abe_adversary as adversary;
pub use abe_consensus as consensus;
pub use abe_core as core;
pub use abe_election as election;
pub use abe_live as live;
pub use abe_scenario as scenario;
pub use abe_sim as sim;
pub use abe_statesync as statesync;
pub use abe_stats as stats;
pub use abe_sync as sync;
pub use abe_telemetry as telemetry;
pub use abe_wave as wave;
