//! Scenario campaign: run one `.abes` experiment as data.
//!
//! The `scenarios/` corpus describes complete experiments — topology,
//! delay model, fault plan, adversary plan, protocol, grid axes, seeds
//! and the expected outcome class — in a compact text form. This example
//! walks the whole path by hand: parse `scenarios/e14_crash_churn.abes`,
//! compile it down to a sweep over the deterministic engine, run it, and
//! print every grid cell's classified outcome next to the scenario's
//! declared expectation. The final line reports the standing oracles
//! (outcome class, adversary budget audit) over the run.
//!
//! The same corpus is what `abe-experiments campaign` diffs against the
//! committed goldens in CI; see `docs/SCENARIO.md` for the grammar.
//!
//! Run with:
//!
//! ```console
//! $ cargo run --example scenario_campaign
//! ```

use std::fs;
use std::process::ExitCode;

use abe_networks::scenario::campaign::check_oracles;
use abe_networks::scenario::{compile, parse};

const SCENARIO: &str = "scenarios/e14_crash_churn.abes";
const THREADS: usize = 4;

fn main() -> ExitCode {
    let text = match fs::read_to_string(SCENARIO) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{SCENARIO}: {e} (run from the repository root)");
            return ExitCode::FAILURE;
        }
    };
    let scenario = parse(&text).expect("corpus scenario parses");
    let compiled = compile(&scenario).expect("corpus scenario compiles");

    println!("scenario {}", scenario.name);
    println!(
        "  record {}   expect {}   {} cells\n",
        scenario.record.as_str(),
        scenario.expect.as_str(),
        compiled.spec().expand().len(),
    );

    let outcome = compiled.run(THREADS).expect("sweep runs");

    // Classify each cell from its recorded metrics, exactly as the
    // campaign oracles do: `classified` mode records indicator metrics,
    // election/adversary modes record a `leaders` count.
    println!("  {:<40} outcome", "cell");
    for result in &outcome.cells {
        let class = if result.metrics.get("completed") == Some(1.0) {
            "completed"
        } else if result.metrics.get("stalled") == Some(1.0) {
            "stalled"
        } else if result.metrics.get("wrong_leader") == Some(1.0) {
            "wrong-leader"
        } else {
            match result.metrics.get("leaders") {
                Some(l) if (l - 1.0).abs() < f64::EPSILON => "completed",
                Some(l) if l.abs() < f64::EPSILON => "stalled",
                Some(_) => "wrong-leader",
                None => "unclassified",
            }
        };
        println!("  {:<40} {class}", result.cell.label());
    }

    let oracle = check_oracles(&scenario, &outcome);
    println!(
        "\noracles: {} cells checked, {} violations",
        oracle.cells_checked,
        oracle.violations.len()
    );
    for violation in &oracle.violations {
        eprintln!("  violation: {violation}");
    }
    if oracle.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
