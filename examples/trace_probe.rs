//! Trace probe: record a full election trace and read it three ways.
//!
//! Telemetry is an **observer**: turning it on changes nothing about the
//! run. This example proves that first — the traced election returns the
//! exact report of the untraced one — and then takes the captured
//! [`RunRecorder`](abe_networks::telemetry::RunRecorder) through every
//! consumer the layer offers:
//!
//! * `TraceAnalysis` — per-node timelines, the empirical Definition-1
//!   delay audit (each edge's mean *granted* delay against the declared
//!   bound δ), and deliver→send causal chains;
//! * `JsonlSink` — the `trace-v1` JSONL rendering that
//!   `abe-experiments trace --out` writes (see docs/TRACE_JSON.md),
//!   validated here with `validate_trace`;
//! * `HistogramSink` — the fixed-memory `hist-v1` aggregate that sweep
//!   cells embed under a telemetry budget.
//!
//! Everything printed is deterministic: the same seed produces the same
//! bytes at any thread or shard count, because recording stamps events
//! with `(virtual time, kernel key, emission index)` — never with
//! anything the scheduler chose.
//!
//! Run with:
//!
//! ```console
//! $ cargo run --example trace_probe
//! ```

use abe_networks::election::{run_abe_calibrated, RingConfig};
use abe_networks::telemetry::{render_header, validate_trace, JsonlSink, Recording, TraceAnalysis};

const N: u32 = 12;
const SEED: u64 = 7;
const DELTA: f64 = 1.0;

fn main() {
    // 1. Same run twice: recording off, then on. Identical reports.
    let untraced = run_abe_calibrated(&RingConfig::new(N).seed(SEED), DELTA);
    let cfg = RingConfig::new(N)
        .seed(SEED)
        .record(Recording::full().payloads(true).histograms(true));
    let traced = run_abe_calibrated(&cfg, DELTA);
    assert_eq!(traced.report, untraced.report, "recording never perturbs");
    assert!(
        untraced.telemetry.is_none(),
        "untraced runs capture nothing"
    );
    let rec = traced.telemetry.as_deref().expect("recording was on");
    println!(
        "ring n = {N}, seed {SEED}: {} trace records, {} dropped, report unperturbed\n",
        rec.len(),
        rec.dropped()
    );

    // 2. Analysis: timelines, causal chains, and the Definition-1 audit.
    let analysis = TraceAnalysis::from_records(rec.records().cloned());
    println!("{}", analysis.report(Some(DELTA)));
    if let Some((edge, mean)) = analysis.max_edge_mean() {
        println!(
            "hottest edge {edge}: empirical mean granted delay {mean:.4} s \
             (small samples may legally exceed δ — Definition 1 bounds the expectation)\n"
        );
    }
    println!("causal chain behind the first delivery on edge 0:");
    for hop in analysis.chain_from(0, 0, 8) {
        println!(
            "  edge {} seq {}: node {} -> node {}, sent {:?}, delivered {:?}",
            hop.edge, hop.seq, hop.src, hop.dst, hop.sent_at, hop.delivered_at
        );
    }

    // 3. The trace-v1 JSONL file, exactly as `trace --out` writes it.
    let mut sink = JsonlSink::new();
    rec.replay(&mut sink);
    let file = format!(
        "{}\n{}",
        render_header(sink.records(), rec.dropped(), &[]),
        sink.body()
    );
    let summary = validate_trace(&file).expect("self-rendered traces validate");
    println!(
        "\ntrace-v1: {} lines validate ({} records); first three:",
        file.lines().count(),
        summary.records
    );
    for line in file.lines().take(3) {
        println!("  {line}");
    }

    // 4. The hist-v1 aggregate a sweep telemetry budget would embed.
    let hist = rec.histograms().expect("histograms were on");
    println!("\nhist-v1: {}", hist.to_json());
}
