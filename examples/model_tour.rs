//! A tour of the ABE model's ingredients: delay families, network-class
//! contracts, and clock drift.
//!
//! ```text
//! cargo run --example model_tour
//! ```

use abe_networks::core::clock::{ClockSpec, DriftMode};
use abe_networks::core::delay::{standard_families, Deterministic, Exponential};
use abe_networks::core::{AbeParams, NetworkClass};
use abe_networks::sim::{SimDuration, SimTime, Xoshiro256PlusPlus};
use abe_networks::stats::{fmt_num, quantile, Online, Table};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Delay families at equal mean (δ = 2) ==\n");
    let mut table = Table::new(&["family", "analytic mean", "sample mean", "p99", "bounded?"]);
    for (label, model) in standard_families(2.0) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let samples: Vec<f64> = (0..100_000)
            .map(|_| model.sample(&mut rng).as_secs())
            .collect();
        let acc: Online = samples.iter().copied().collect();
        table.row(&[
            label.to_string(),
            fmt_num(model.mean().as_secs()),
            fmt_num(acc.mean()),
            fmt_num(quantile(&samples, 0.99).unwrap_or(f64::NAN)),
            match model.upper_bound() {
                Some(b) => format!("<= {}", fmt_num(b.as_secs())),
                None => "no".to_string(),
            },
        ]);
    }
    println!("{table}");
    println!("same mean, wildly different tails — the ABE model treats them all alike.\n");

    println!("== Network-class contracts (Definition 1, machine-checked) ==\n");
    let abe = NetworkClass::Abe(AbeParams::new(2.0, 0.5, 2.0, 0.0)?);
    let abd = NetworkClass::Abd {
        delay_bound: SimDuration::from_secs(2.0),
    };
    let clocks = ClockSpec::new(0.5, 2.0, DriftMode::Fixed)?;
    let zero = Deterministic::zero();

    let exp = Exponential::from_mean(2.0)?;
    println!(
        "exponential(mean 2) against ABE(δ=2):  {:?}",
        abe.validate(&exp, &clocks, &zero).is_ok()
    );
    println!(
        "exponential(mean 2) against ABD(B=2):  {:?}",
        abd.validate(&exp, &clocks, &zero)
    );
    let det = Deterministic::new(2.0)?;
    println!(
        "deterministic(2)    against ABD(B=2):  {:?}",
        abd.validate(&det, &ClockSpec::perfect(), &zero).is_ok()
    );
    println!(
        "deterministic(2)    against ABE(δ=2):  {:?} (ABD ⊂ ABE)\n",
        abe.validate(&det, &clocks, &zero).is_ok()
    );

    println!("== Clock drift (Definition 1.2) ==\n");
    let spec = ClockSpec::new(0.5, 2.0, DriftMode::Wander)?;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
    let mut clock = spec.instantiate(&mut rng);
    let mut table = Table::new(&["real time", "local time", "current rate"]);
    let mut real = SimTime::ZERO;
    for _ in 0..6 {
        real += SimDuration::from_secs(5.0);
        let local = clock.advance_to(real);
        table.row(&[
            fmt_num(real.as_secs()),
            fmt_num(local),
            format!("{:.3}", clock.rate()),
        ]);
        clock.real_interval(1.0, &mut rng); // wander re-draws the rate
    }
    println!("{table}");
    println!("local time always advances within [0.5x, 2x] of real time — Definition 1.2 holds.");
    Ok(())
}
