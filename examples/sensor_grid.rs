//! A sensor-network scenario (the abstract's "asynchrony that occurs in
//! sensor networks and ad-hoc networks").
//!
//! ```text
//! cargo run --example sensor_grid
//! ```
//!
//! An 8×8 torus of sensor nodes with heavy-tailed (Pareto) link delays and
//! drifting local clocks — a legal ABE network, far outside ABD. We run a
//! synchronised flooding broadcast over the graph synchroniser and verify
//! the synchronous semantics survive: every node learns the value exactly
//! at its BFS distance from the source, despite reordering and drift.

use abe_networks::core::clock::{ClockSpec, DriftMode};
use abe_networks::core::delay::Pareto;
use abe_networks::core::topology::NodeId;
use abe_networks::core::{NetworkBuilder, Topology};
use abe_networks::sim::RunLimits;
use abe_networks::sync::{Flood, GraphSynchronizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (width, height) = (8u32, 8u32);
    let topology = Topology::torus(width, height)?;
    let n = topology.node_count();
    let distances = topology.bfs_distances(NodeId::new(0));

    println!("== Sensor grid: {width}x{height} torus, Pareto delays, drifting clocks ==\n");
    println!(
        "nodes: {n}, edges: {}, diameter: {:?}",
        topology.edge_count(),
        topology.diameter()
    );

    let rounds = u64::from(width + height + 2);
    let network = NetworkBuilder::new(topology)
        // Heavy-tailed delays: queueing spikes dominate the tail, but the
        // mean is 1 — a textbook ABE link.
        .delay(Pareto::from_mean(2.5, 1.0)?)
        // Sensor oscillators: up to 2x relative speed, re-drawn over time.
        .clocks(ClockSpec::new(0.7, 1.4, DriftMode::Wander)?)
        .seed(99)
        .build(|i| GraphSynchronizer::new(Flood::new(i == 0), rounds))?;

    let (report, network) = network.run(RunLimits::unbounded());

    println!(
        "outcome: {}, virtual time {:.1}",
        report.outcome,
        report.end_time.as_secs()
    );
    println!(
        "synchroniser cost: {} envelopes over {} node-pulses ({:.1} msgs per round, n = {n})",
        report.counter("envelopes"),
        report.counter("pulses"),
        report.counter("envelopes") as f64 / (report.counter("pulses") as f64 / n as f64),
    );

    let mut correct = 0;
    for (i, node) in network.protocols().enumerate() {
        let expected = distances[i].map(u64::from);
        if node.app().informed_at() == expected {
            correct += 1;
        }
    }
    println!(
        "\nsynchronous semantics check: {correct}/{n} nodes informed exactly at their BFS distance"
    );
    assert_eq!(
        correct, n as usize,
        "synchronised flooding must match BFS rounds"
    );
    println!("the synchroniser preserved lock-step rounds over a heavy-tailed, drifting network —");
    println!("at the unavoidable Theorem 1 price of >= n messages per round.");
    Ok(())
}
