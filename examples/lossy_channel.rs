//! The paper's motivating example (§1 case iii): election over lossy
//! physical channels with retransmission.
//!
//! ```text
//! cargo run --example lossy_channel
//! ```
//!
//! A message over a lossy channel needs a geometrically distributed number
//! of transmissions — *unbounded*, so no ABD bound exists — yet the
//! expected delay is exactly `slot/p`. That makes the network ABE with
//! δ = slot/p, and the election algorithm runs unmodified.

use std::sync::Arc;

use abe_networks::core::delay::{DelayModel, Retransmission};
use abe_networks::election::{run_abe_calibrated, RingConfig};
use abe_networks::sim::Xoshiro256PlusPlus;
use abe_networks::stats::{fmt_num, Online, Table};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Lossy channels: average transmissions = 1/p (paper §1, case iii) ==\n");

    let mut table = Table::new(&[
        "p",
        "1/p",
        "measured attempts",
        "measured delay",
        "max delay seen",
    ]);
    for &p in &[0.9, 0.5, 0.25, 0.1] {
        let channel = Retransmission::new(p, 1.0)?;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut attempts = Online::new();
        let mut delay = Online::new();
        for _ in 0..200_000 {
            attempts.push(channel.sample_attempts(&mut rng) as f64);
            delay.push(channel.sample(&mut rng).as_secs());
        }
        table.row(&[
            p.to_string(),
            fmt_num(1.0 / p),
            fmt_num(attempts.mean()),
            fmt_num(delay.mean()),
            fmt_num(delay.max().unwrap_or(0.0)),
        ]);
    }
    println!("{table}");
    println!("note the max column: delays far beyond the mean occur — no hard bound exists,\nso this network is ABE but *not* ABD.\n");

    println!("== Election over the lossy ring (n = 64) ==\n");
    let n: u32 = 64;
    let mut table = Table::new(&["p", "δ = 1/p", "avg messages/n", "avg time", "time/(n·δ)"]);
    for &p in &[0.9, 0.5, 0.25, 0.1] {
        let channel = Retransmission::new(p, 1.0)?;
        let delta = channel.mean().as_secs();
        let mut messages = Online::new();
        let mut time = Online::new();
        for seed in 0..25 {
            let cfg = RingConfig::new(n).delay(Arc::new(channel)).seed(seed);
            let outcome = run_abe_calibrated(&cfg, 1.0);
            assert!(outcome.terminated && outcome.leaders == 1);
            messages.push(outcome.messages as f64);
            time.push(outcome.time);
        }
        table.row(&[
            p.to_string(),
            fmt_num(delta),
            fmt_num(messages.mean() / n as f64),
            fmt_num(time.mean()),
            fmt_num(time.mean() / (n as f64 * delta)),
        ]);
    }
    println!("{table}");
    println!("time scales with n·δ = n/p while messages/n and time/(n·δ) stay constant:\nknowing the *expected* delay is all the algorithm ever needed.");
    Ok(())
}
