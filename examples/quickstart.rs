//! Quickstart: elect a leader on an anonymous unidirectional ABE ring.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a 32-node ring whose links have *unbounded* delays (exponential,
//! mean δ = 1), runs the PODC 2010 election algorithm with the calibrated
//! activation parameter, and prints what happened.

use abe_networks::core::delay::Exponential;
use abe_networks::core::{NetworkBuilder, Topology};
use abe_networks::election::{AbeElection, ElectionState};
use abe_networks::sim::RunLimits;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = 32;
    let seed = 2026;

    // 1. The network model: Definition 1 with δ = 1 (expected delay),
    //    perfect clocks, instantaneous processing.
    let topology = Topology::unidirectional_ring(n)?;
    let network = NetworkBuilder::new(topology)
        .delay(Exponential::from_mean(1.0)?)
        .seed(seed)
        // 2. The algorithm: every node runs identical code (anonymity) and
        //    knows only n and the activation budget.
        .build(|_| AbeElection::calibrated(n, 1.0).expect("valid parameters"))?;

    // 3. Run to termination (the winning node stops the simulation).
    let (report, network) = network.run(RunLimits::unbounded());

    println!("== ABE ring election (n = {n}, seed = {seed}) ==");
    println!("outcome:            {}", report.outcome);
    println!(
        "virtual time:       {:.2} time units ({:.2} per node)",
        report.end_time.as_secs(),
        report.end_time.as_secs() / n as f64
    );
    println!(
        "messages sent:      {} ({:.2} per node)",
        report.messages_sent,
        report.messages_sent as f64 / n as f64
    );
    println!("activations:        {}", report.counter("activations"));
    println!("knockouts:          {}", report.counter("knockouts"));
    println!("collision purges:   {}", report.counter("purges"));

    let mut tally = [0usize; 4];
    for node in network.protocols() {
        let idx = match node.state() {
            ElectionState::Idle => 0,
            ElectionState::Active => 1,
            ElectionState::Passive => 2,
            ElectionState::Leader => 3,
        };
        tally[idx] += 1;
    }
    println!(
        "final states:       {} idle, {} active, {} passive, {} leader",
        tally[0], tally[1], tally[2], tally[3]
    );
    assert_eq!(tally[3], 1, "exactly one leader must be elected");
    println!("\nexactly one leader elected, in linear expected time and messages — §3's promise.");
    Ok(())
}
