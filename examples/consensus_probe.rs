//! Consensus probe: what does adversarial scheduling cost Ben-Or?
//!
//! Randomized binary consensus is the classic customer of the ABE
//! model: Ben-Or terminates with probability 1 under *any* admissible
//! schedule, and Definition 1's expectation bound caps how much a legal
//! adversary can stretch that. This example runs Ben-Or on a complete
//! graph with split inputs (half the nodes propose 0, half propose 1 —
//! the hard case, where only the private coins can break symmetry) and
//! compares two worlds over the same eight seeds:
//!
//! * **oblivious** — plain exponential delays of mean δ, no adversary;
//! * **adaptive, full budget** — the `TargetHeat` adversary from e17
//!   spends a 4δ expectation budget on messages heading for hot nodes.
//!
//! Each run prints its rounds-to-decide, message total, and the
//! `BudgetAuditor` verdict (max per-edge empirical delay mean, clamp
//! count). Safety is asserted, not printed: every run must decide
//! unanimously on a proposed value — the adversary only buys rounds.
//!
//! Run with:
//!
//! ```console
//! $ cargo run --example consensus_probe
//! ```

use abe_networks::adversary::TargetHeat;
use abe_networks::consensus::{run_benor, ConsensusConfig, InputAssignment};
use abe_networks::core::{AdversaryPlan, OutcomeClass};

const N: u32 = 9;
const FAULTY: u32 = 2;
const BUDGET: f64 = 4.0;
const SEEDS: u64 = 8;

fn drill(label: &str, adversarial: bool) -> f64 {
    println!("{label}:");
    println!(
        "  {:>4}  {:>6}  {:>8}  {:>13}  {:>7}",
        "seed", "rounds", "messages", "max edge mean", "clamped"
    );
    let mut mean_rounds = 0.0;
    for seed in 0..SEEDS {
        let mut cfg = ConsensusConfig::new(N, FAULTY).seed(seed);
        if adversarial {
            cfg =
                cfg.adversary(AdversaryPlan::new(BUDGET, TargetHeat::new()).expect("valid budget"));
        }
        let o = run_benor(&cfg, InputAssignment::Split);
        assert_eq!(o.class(), OutcomeClass::Decided, "every drill run decides");
        assert_eq!(
            o.report.adversary.violations, 0,
            "legal ABE executions only"
        );
        mean_rounds += o.max_round() as f64 / SEEDS as f64;
        println!(
            "  {:>4}  {:>6}  {:>8}  {:>13.4}  {:>7}",
            seed,
            o.max_round(),
            o.report.messages_sent,
            o.report.adversary.max_edge_mean,
            o.report.adversary.clamped
        );
    }
    println!("  mean rounds-to-decide: {mean_rounds:.2}\n");
    mean_rounds
}

fn main() {
    println!(
        "Ben-Or on the complete graph: n = {N}, f = {FAULTY}, split inputs, \
         {SEEDS} seeds\n"
    );
    let baseline = drill("oblivious baseline (no adversary)", false);
    let attacked = drill(&format!("adaptive adversary, budget {BUDGET}δ"), true);
    println!(
        "the worst legal schedule this family finds inflates mean rounds by \
         {:.2}x\n(safety held in every run: scheduling attacks liveness margins, \
         never agreement)",
        attacked / baseline
    );
}
