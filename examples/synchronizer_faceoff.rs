//! Synchroniser face-off: Theorem 1's floor vs the unsound ABD shortcut.
//!
//! ```text
//! cargo run --example synchronizer_faceoff
//! ```
//!
//! Two ways to simulate synchronous rounds on a ring whose delays are only
//! bounded *in expectation*:
//!
//! * the **graph synchroniser** — always correct, but pays exactly `n`
//!   messages per round (Theorem 1 says nothing cheaper can exist);
//! * the **ABD synchroniser** — free of control messages, but its
//!   correctness rests on a hard delay bound that ABE networks do not
//!   have; we count how often the synchronous abstraction breaks.

use abe_networks::core::delay::{Bimodal, Exponential};
use abe_networks::core::{NetworkBuilder, Topology};
use abe_networks::sim::RunLimits;
use abe_networks::stats::{fmt_num, Table};
use abe_networks::sync::{AbdSynchronizer, Chatter, GraphSynchronizer, Heartbeat};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = 16;
    let rounds: u64 = 200;

    println!("== Part 1: the Theorem 1 floor (graph synchroniser, heartbeat app) ==\n");
    let mut table = Table::new(&["topology", "n", "messages/round", "per node"]);
    for (name, topo) in [
        ("unidirectional ring", Topology::unidirectional_ring(n)?),
        ("bidirectional ring", Topology::bidirectional_ring(n)?),
        ("4x4 torus", Topology::torus(4, 4)?),
        ("complete", Topology::complete(n)?),
    ] {
        let nodes = topo.node_count() as f64;
        let net = NetworkBuilder::new(topo)
            .delay(Exponential::from_mean(1.0)?)
            .seed(5)
            .build(|_| GraphSynchronizer::new(Heartbeat::new(), rounds))?;
        let (report, _) = net.run(RunLimits::unbounded());
        let per_round = report.messages_sent as f64 / (rounds - 1) as f64;
        table.row(&[
            name.to_string(),
            fmt_num(nodes),
            fmt_num(per_round),
            fmt_num(per_round / nodes),
        ]);
    }
    println!("{table}");
    println!("the unidirectional ring hits exactly 1.0 per node — the Theorem 1 lower bound\nis met with equality; nothing correct can go below it.\n");

    println!("== Part 2: the ABD synchroniser on ABE delays (violations per pulse interval) ==\n");
    let mut table = Table::new(&["delay model", "Φ/δ", "violation rate"]);
    for &phi in &[1.0, 2.0, 4.0, 8.0] {
        for bounded in [true, false] {
            let topo = Topology::unidirectional_ring(n)?;
            let builder = NetworkBuilder::new(topo).tick_interval(phi).seed(11);
            let builder = if bounded {
                builder.delay(Bimodal::new(0.5, 2.5, 0.25)?) // hard bound 2.5
            } else {
                builder.delay(Exponential::from_mean(1.0)?) // unbounded
            };
            let net = builder.build(|_| AbdSynchronizer::new(Chatter, rounds))?;
            let (report, _) = net.run(RunLimits::unbounded());
            let rate =
                report.counter("violations") as f64 / report.counter("app-messages").max(1) as f64;
            table.row(&[
                if bounded {
                    "bounded (ABD-legal)"
                } else {
                    "exponential (ABE)"
                }
                .to_string(),
                fmt_num(phi),
                format!("{rate:.5}"),
            ]);
        }
    }
    println!("{table}");
    println!("with a hard bound the violations vanish once Φ clears it; with merely a bounded\n*expectation* they never vanish — the ABD synchroniser does not survive in ABE.");
    Ok(())
}
