//! The election running **live**: one OS thread per node, crossbeam
//! channels, wall-clock delays — no simulator anywhere.
//!
//! ```text
//! cargo run --release --example live_election
//! ```
//!
//! The same `AbeElection` protocol values that the simulator measures are
//! handed to the `abe-live` runtime unmodified. Live runs are not
//! deterministic (real scheduling!), so we run a handful and check the
//! safety property — exactly one leader — every time.

use std::sync::Arc;
use std::time::Duration;

use abe_networks::core::delay::Exponential;
use abe_networks::core::Topology;
use abe_networks::election::{AbeElection, ElectionState};
use abe_networks::live::{run_live, LiveConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = 8;
    println!("== Live election: {n} OS threads, crossbeam channels, wall-clock delays ==\n");

    for round in 0..5u64 {
        let report = run_live(
            Topology::unidirectional_ring(n)?,
            Arc::new(Exponential::from_mean(1.0)?),
            &LiveConfig {
                time_scale: Duration::from_micros(300), // 1 virtual s = 300 µs wall
                seed: round,
                max_wall: Duration::from_secs(20),
            },
            |_| AbeElection::calibrated(n, 2.0).expect("valid parameters"),
            |stats| stats.stop_requested,
        );
        let leaders = report
            .protocols
            .iter()
            .filter(|p| p.state() == ElectionState::Leader)
            .count();
        println!(
            "run {round}: leader elected in {:?} wall time, {} messages, states: {} passive / {} leader",
            report.wall_elapsed,
            report.messages_sent,
            report
                .protocols
                .iter()
                .filter(|p| p.state() == ElectionState::Passive)
                .count(),
            leaders,
        );
        assert_eq!(leaders, 1, "safety must hold under real concurrency");
    }

    println!("\nfive live runs, five unique leaders — the protocol is not simulator-bound.");
    Ok(())
}
