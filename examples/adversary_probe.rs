//! Adversary probe: how much can a *legal* ABE adversary slow the
//! election?
//!
//! Definition 1 lets an adversary choose every message delay, constrained
//! only by a known bound δ on each channel's **expected** delay. This
//! example runs the calibrated §3 election under the four strategies of
//! `abe-adversary`, all pinned to the *same* budget as the oblivious
//! baseline (δ = 1), and prints what each one achieves:
//!
//! * `swap` replaces the exponential with a heavy-tailed Pareto of equal
//!   mean — family choice alone;
//! * `burst` banks near-zero delays and spends the whole accumulated
//!   allowance in one hit;
//! * `reorder` alternates instant and double-budget delays per edge,
//!   systematically inverting delivery order;
//! * `adaptive` reads the narrow protocol view and dumps every banked
//!   allowance onto messages heading for hot nodes — the election's
//!   token-holders and wake-up candidates.
//!
//! Every run prints its `BudgetAuditor` verdict: the max per-edge
//! empirical delay mean (never above δ) and the clamp count. The lesson
//! mirrors experiment e17: adversaries that *waste* budget on knocked-out
//! passive chains can even speed the election up, while targeting the
//! token-holders stretches it — yet the expected-complexity bound keeps
//! every legal strategy within a constant factor.
//!
//! Run with:
//!
//! ```console
//! $ cargo run --example adversary_probe
//! ```

use std::sync::Arc;

use abe_networks::adversary::{Burst, Reorder, Swap, TargetHeat};
use abe_networks::core::delay::Pareto;
use abe_networks::core::AdversaryPlan;
use abe_networks::election::{run_abe_calibrated, RingConfig};

const N: u32 = 32;
const BUDGET: f64 = 1.0;
const SEEDS: u64 = 20;

fn plan(name: &str) -> AdversaryPlan {
    match name {
        "none" => AdversaryPlan::none(),
        "swap" => AdversaryPlan::new(
            BUDGET,
            Swap::new(Arc::new(Pareto::from_mean(2.5, BUDGET).expect("valid"))),
        )
        .expect("valid budget"),
        "burst" => AdversaryPlan::new(BUDGET, Burst::new(0.05)).expect("valid budget"),
        "reorder" => AdversaryPlan::new(BUDGET, Reorder::new()).expect("valid budget"),
        _ => AdversaryPlan::new(BUDGET, TargetHeat::new()).expect("valid budget"),
    }
}

fn main() {
    println!("ring n = {N}, budget δ = {BUDGET}, {SEEDS} seeds per strategy\n");
    println!(
        "{:>9}  {:>10}  {:>10}  {:>13}  {:>8}",
        "strategy", "time", "messages", "max edge mean", "clamped"
    );
    let mut baseline_time = 0.0;
    for name in ["none", "swap", "burst", "reorder", "adaptive"] {
        let (mut time, mut messages, mut max_mean, mut clamped) = (0.0, 0u64, 0.0f64, 0u64);
        for seed in 0..SEEDS {
            let cfg = RingConfig::new(N).seed(seed).adversary(plan(name));
            let o = run_abe_calibrated(&cfg, 1.0);
            assert_eq!(o.leaders, 1, "elections stay correct under adversaries");
            assert_eq!(o.report.adversary.violations, 0, "legal executions only");
            time += o.time / SEEDS as f64;
            messages += o.messages;
            max_mean = max_mean.max(o.report.adversary.max_edge_mean);
            clamped += o.report.adversary.clamped;
        }
        if name == "none" {
            baseline_time = time;
        }
        println!(
            "{:>9}  {:>6.1} ({:.2}x)  {:>8.1}  {:>13.4}  {:>8}",
            name,
            time,
            time / baseline_time,
            messages as f64 / SEEDS as f64,
            max_mean,
            clamped
        );
    }
    println!(
        "\nevery per-edge empirical mean stayed ≤ δ = {BUDGET}: the adversaries pick\n\
         *which* legal ABE execution happens, and the election survives them all."
    );
}
