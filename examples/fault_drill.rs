//! Fault drill: a ring election running through a crash-recover schedule.
//!
//! Walkthrough:
//!
//! 1. Build a [`FaultPlan`] that knocks two nodes out mid-election —
//!    node 5 for `t ∈ [2, 14)` and node 11 for `t ∈ [10, 22)`. The plan
//!    is pure data: times are virtual seconds, and the same plan on the
//!    same seed reproduces the same execution bit for bit (an *empty*
//!    plan reproduces the fault-free run exactly).
//! 2. Hand it to the election runner via
//!    [`RingConfig::fault`](abe_networks::election::RingConfig) and lower
//!    the event budget: stalled elections *livelock* (see below), so the
//!    budget is the stall detector.
//! 3. Run several seeds and classify with
//!    [`ElectionOutcome::class`](abe_networks::election::ElectionOutcome).
//!    The outcome is all-or-nothing, and the fault telemetry says why:
//!
//!    * **no token crossed a down node** → the run completes with exactly
//!      one leader, paying essentially nothing (`completed`, 0 tokens
//!      lost);
//!    * **any token died at a down node** → its sender is left Active
//!      with nothing in flight, and that node purges every token the
//!      idle nodes regenerate, forever (`stalled`, ≥ 1 token lost).
//!      Never two leaders: loss cannot break the election's safety, only
//!      its liveness. Experiment e14 sweeps this trade-off.
//!
//! Run with:
//!
//! ```console
//! $ cargo run --example fault_drill
//! ```

use abe_networks::core::fault::FaultPlan;
use abe_networks::core::OutcomeClass;
use abe_networks::election::{run_abe_calibrated, RingConfig};

fn main() {
    let n = 16;
    let drill = || {
        FaultPlan::new()
            .crash_recover(5, 2.0, 14.0)
            .crash_recover(11, 10.0, 22.0)
    };

    println!("ring of {n}, outages: node 5 down [2, 14), node 11 down [10, 22)\n");
    println!(
        "{:>6}  {:>9}  {:>11}  {:>8}  {:>8}",
        "seed", "class", "tokens lost", "messages", "time"
    );
    let mut survived = 0;
    let mut classes = Vec::new();
    for seed in 0..8u64 {
        let cfg = RingConfig::new(n)
            .seed(seed)
            .fault(drill())
            .max_events(50_000);
        let o = run_abe_calibrated(&cfg, 1.0);
        println!(
            "{seed:>6}  {:>9}  {:>11}  {:>8}  {:>8.1}",
            o.class().as_str(),
            o.report.faults.dropped_crash,
            o.messages,
            o.time
        );
        // Loss and stalling coincide exactly (e14 verifies this grid-wide).
        assert_eq!(
            o.report.faults.dropped_crash > 0,
            o.class() == OutcomeClass::Stalled
        );
        assert_ne!(
            o.class(),
            OutcomeClass::WrongLeader,
            "loss never breaks safety"
        );
        if o.class() == OutcomeClass::Completed {
            survived += 1;
        }
        classes.push(o.class());
    }
    println!("\n{survived}/8 seeds elected a leader through the drill;");
    println!("every failure lost a token and stalled — none elected two leaders.");
    assert!(classes.contains(&OutcomeClass::Completed));
}
